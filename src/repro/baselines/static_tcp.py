"""Baseline 0: static routes, recovery left entirely to TCP retransmission.

This is the configuration a cluster has with no routing daemon at all: one
static route per peer on the primary network.  A NIC or hub failure on that
network is never routed around — transport either outlasts the outage via
retransmission (transient faults) or the connection dies (permanent faults).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.topology import Cluster
from repro.protocols.stack import HostStack


@dataclass
class StaticOnlyDeployment:
    """Marker deployment: nothing runs; routes stay as installed at boot."""

    stacks: dict[int, HostStack]

    def start(self) -> None:
        """No daemons to start."""

    def stop(self) -> None:
        """No daemons to stop."""

    def total_probe_bytes(self) -> float:
        """Static routing sends no probes at all."""
        return 0.0


def install_static_only(cluster: Cluster, stacks: dict[int, HostStack]) -> StaticOnlyDeployment:
    """Return the do-nothing deployment (parallel to ``install_drs``)."""
    return StaticOnlyDeployment(stacks=stacks)

"""Structured run artifacts: manifests, metrics snapshots, trace dumps.

Every experiment and scenario run writes, next to its results:

* ``<name>.manifest.json`` — :class:`RunManifest`: seed, config, spec hash,
  wall time, event count, package version — the provenance needed to diff
  two ``results/`` directories and know whether they are comparable.
* ``<name>.metrics.jsonl`` / ``<name>.metrics.prom`` — the registry
  snapshot in JSONL and Prometheus text form.
* ``<name>.trace.jsonl`` (scenarios) — the event trace, one entry per line.

``repro obs`` pretty-prints all of them.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.simkit.trace import TraceRecorder

MANIFEST_SCHEMA_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file + ``os.replace``.

    Readers (and crash recovery) therefore only ever see the old complete
    content or the new complete content, never a torn write.  Used for the
    engine's checkpoint stream and for manifests.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def spec_hash(config: Any) -> str:
    """Stable short hash of a JSON-serializable config/spec structure."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class RunManifest:
    """Provenance record for one run (experiment or scenario)."""

    name: str
    kind: str  # "experiment" | "scenario"
    seed: int | None
    config: dict[str, Any]
    config_hash: str
    wall_seconds: float
    event_count: int
    package_version: str
    schema_version: int = MANIFEST_SCHEMA_VERSION
    created_unix: float = 0.0
    python: str = field(default_factory=platform.python_version)
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        name: str,
        kind: str,
        seed: int | None,
        config: dict[str, Any],
        wall_seconds: float,
        event_count: int,
        **extra: Any,
    ) -> "RunManifest":
        """Assemble a manifest, hashing the config and stamping versions."""
        from repro import __version__

        return cls(
            name=name,
            kind=kind,
            seed=seed,
            config=config,
            config_hash=spec_hash(config),
            wall_seconds=wall_seconds,
            event_count=event_count,
            package_version=__version__,
            created_unix=time.time(),
            extra=dict(extra),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (what gets serialized)."""
        return asdict(self)

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty-printed JSON (atomically)."""
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str) + "\n"
        )


def load_manifest(path: str | Path) -> RunManifest:
    """Read a manifest back; unknown extra keys are preserved in ``extra``."""
    raw = json.loads(Path(path).read_text())
    known = {f for f in RunManifest.__dataclass_fields__}
    kwargs = {k: v for k, v in raw.items() if k in known}
    kwargs.setdefault("extra", {})
    kwargs["extra"].update({k: v for k, v in raw.items() if k not in known})
    return RunManifest(**kwargs)


def write_metrics_files(registry: MetricsRegistry, out_dir: str | Path, name: str) -> list[Path]:
    """Write both metrics snapshot forms for one run; returns the paths."""
    out_dir = Path(out_dir)
    return [
        registry.write_jsonl(out_dir / f"{name}.metrics.jsonl"),
        registry.write_prometheus(out_dir / f"{name}.metrics.prom"),
    ]


def write_trace_jsonl(recorder: TraceRecorder, path: str | Path) -> Path:
    """Dump a :class:`TraceRecorder` as JSONL (non-serializable fields repr'd)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for entry in recorder.iter_entries():
            row = {"time": entry.time, "category": entry.category, **entry.fields}
            fh.write(json.dumps(row, default=str) + "\n")
    return path

"""Figure 1: the proactive cost of DRS monitoring.

The monitor exchanges an ICMP echo (84 wire bytes each way, see
:mod:`repro.netsim.frames`) between every ordered node pair on each network.
Budgeting a fraction ``rho`` of a segment's bandwidth for probes fixes the
fastest full sweep — which is the error-resolution *response time* the
paper plots against cluster size for several budgets:

    T(N, rho) = N (N-1) * 2 * 84 * 8  /  (rho * bandwidth)

The paper's checkpoint "ninety hosts are supported in less than 1 second
with only 10% of the bandwidth usage" lands at T(90, 0.10) ≈ 1.08 s under
this calibration (the sub-second reading matches at 89 hosts; see
EXPERIMENTS.md for the sensitivity discussion).
"""

from __future__ import annotations

import numpy as np

from repro.drs.config import PROBE_WIRE_BYTES


def probe_bits_per_sweep(n: int, probe_wire_bytes: int = PROBE_WIRE_BYTES) -> int:
    """Wire bits one full sweep puts on each network segment."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return n * (n - 1) * 2 * probe_wire_bytes * 8


def sweep_time_s(
    n: int | np.ndarray,
    budget: float,
    bandwidth_bps: float = 100e6,
    probe_wire_bytes: int = PROBE_WIRE_BYTES,
) -> float | np.ndarray:
    """Fastest full-sweep (error-resolution) time under a probe budget."""
    if not 0 < budget <= 1:
        raise ValueError(f"budget must be in (0, 1], got {budget}")
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth_bps must be positive")
    n = np.asarray(n)
    if (n < 2).any():
        raise ValueError("need n >= 2")
    bits = n * (n - 1) * 2 * probe_wire_bytes * 8
    result = bits / (budget * bandwidth_bps)
    return float(result) if result.ndim == 0 else result


def max_nodes_within(
    deadline_s: float,
    budget: float,
    bandwidth_bps: float = 100e6,
    probe_wire_bytes: int = PROBE_WIRE_BYTES,
) -> int:
    """Largest cluster whose sweep fits the deadline (Figure 1 read-off).

    Solves ``N(N-1) <= deadline * budget * bandwidth / (2 * probe_bits)``
    in closed form and floors.
    """
    if deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    if not 0 < budget <= 1:
        raise ValueError(f"budget must be in (0, 1], got {budget}")
    cap = deadline_s * budget * bandwidth_bps / (2 * probe_wire_bytes * 8)
    # N(N-1) <= cap  ->  N <= (1 + sqrt(1 + 4 cap)) / 2
    n = int((1 + np.sqrt(1 + 4 * cap)) / 2)
    return max(n, 1)


def response_time_curve(
    n_values: np.ndarray | list[int],
    budgets: list[float],
    bandwidth_bps: float = 100e6,
) -> dict[float, np.ndarray]:
    """Figure 1's family of curves: response time vs N, one per budget."""
    ns = np.asarray(list(n_values))
    return {budget: sweep_time_s(ns, budget, bandwidth_bps) for budget in budgets}


def frame_size_sensitivity(
    budget: float = 0.10,
    deadline_s: float = 1.0,
    probe_sizes: tuple[int, ...] = (64, 84, 128, 168, 256),
    bandwidth_bps: float = 100e6,
) -> list[tuple[int, int, float]]:
    """How Figure 1's read-offs move with the (unpublished) probe frame size.

    The paper never states its probe's wire size; our calibration (84 B,
    minimal Ethernet) puts 90 hosts at ~1.08 s on a 10% budget.  This sweep
    reports, per candidate wire size: (size, max nodes within the deadline,
    sweep time at N=90) — the uncertainty band a reader should put around
    the absolute seconds in Figure 1.
    """
    rows = []
    for size in probe_sizes:
        rows.append(
            (
                size,
                max_nodes_within(deadline_s, budget, bandwidth_bps, probe_wire_bytes=size),
                float(sweep_time_s(90, budget, bandwidth_bps, probe_wire_bytes=size)),
            )
        )
    return rows


def detection_time_s(
    n: int,
    budget: float,
    probe_timeout_s: float = 0.02,
    probe_retries: int = 2,
    bandwidth_bps: float = 100e6,
) -> float:
    """Worst-case failure-detection latency: one sweep plus retry timeouts."""
    return float(sweep_time_s(n, budget, bandwidth_bps)) + probe_retries * probe_timeout_s

"""Unit tests for TCP-lite: handshake, reliability, retransmission, close."""

import pytest

from repro.protocols import RouteSource
from repro.protocols.tcp import MSS_BYTES, TcpState


def _server(stacks, node=1, port=80):
    inbox = []
    stacks[node].tcp.listen(port, on_message=lambda conn, data, size: inbox.append((data, size)))
    return inbox


def test_handshake_establishes_both_sides(rig):
    sim, cluster, stacks = rig
    listener_conns = []
    stacks[1].tcp.listen(80, on_connect=listener_conns.append)
    established = []
    conn = stacks[0].tcp.connect(1, 80)
    conn.on_established = lambda c: established.append(sim.now)
    sim.run()
    assert conn.established
    assert len(listener_conns) == 1 and listener_conns[0].established
    assert established and established[0] > 0


def test_message_delivery_in_order(rig):
    sim, cluster, stacks = rig
    inbox = _server(stacks)
    conn = stacks[0].tcp.connect(1, 80)
    for i in range(5):
        conn.send_message(data=f"msg{i}", data_bytes=100)
    sim.run()
    assert [d for d, _ in inbox] == [f"msg{i}" for i in range(5)]
    assert all(size == 100 for _, size in inbox)
    assert conn.messages_sent == 5
    assert len(conn.message_latencies) == 5


def test_large_message_chunked_and_reassembled(rig):
    sim, cluster, stacks = rig
    inbox = _server(stacks)
    conn = stacks[0].tcp.connect(1, 80)
    big = 3 * MSS_BYTES + 17
    conn.send_message(data="payload", data_bytes=big)
    sim.run()
    assert inbox == [("payload", big)]


def test_zero_byte_message_delivered(rig):
    sim, cluster, stacks = rig
    inbox = _server(stacks)
    conn = stacks[0].tcp.connect(1, 80)
    conn.send_message(data="empty")
    sim.run()
    assert inbox[0][0] == "empty"


def test_retransmission_recovers_transient_outage(rig):
    sim, cluster, stacks = rig
    inbox = _server(stacks)
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.5)
    sim.run(until=1.0)  # establish cleanly
    assert conn.established
    # Hub 0 (the static route's network) dies, then comes back.
    cluster.faults.fail("hub0")
    msg = conn.send_message(data="survives", data_bytes=64)
    sim.schedule(2.0, lambda: cluster.faults.repair("hub0"))
    sim.run(until=30.0)
    assert inbox == [("survives", 64)]
    assert conn.retransmissions.value >= 1
    # app-visible latency includes the outage: at least the 2s down time
    assert conn.message_latencies[msg] >= 2.0


def test_permanent_outage_aborts_after_max_retries(rig):
    sim, cluster, stacks = rig
    _server(stacks)
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.1, max_retries=3)
    sim.run(until=1.0)
    closed = []
    conn.on_close = lambda c, reason: closed.append(reason)
    cluster.faults.fail("hub0")
    conn.send_message(data="doomed", data_bytes=10)
    sim.run(until=300.0)
    assert closed == ["max-retries"]
    assert conn.state is TcpState.FAILED


def test_rto_backoff_grows_and_resets(rig):
    sim, cluster, stacks = rig
    _server(stacks)
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.2)
    sim.run(until=1.0)
    base_rto = conn.rto_s
    cluster.faults.fail("hub0")
    conn.send_message(data="x", data_bytes=10)
    sim.run(until=2.0)
    assert conn.rto_s > base_rto  # backed off during outage
    cluster.faults.repair("hub0")
    sim.run(until=120.0)
    assert conn.rto_s <= 2 * base_rto  # backoff reset once acked


def test_close_handshake(rig):
    sim, cluster, stacks = rig
    server_closed = []
    listener = stacks[1].tcp.listen(80, on_connect=lambda c: setattr(c, "on_close", lambda cc, r: server_closed.append(r)))
    conn = stacks[0].tcp.connect(1, 80)
    client_closed = []
    conn.on_close = lambda c, r: client_closed.append(r)
    conn.send_message(data="bye", data_bytes=8)
    sim.run(until=1.0)
    conn.close()
    sim.run(until=5.0)
    assert client_closed == ["fin"]
    assert server_closed == ["fin"]
    assert conn.state is TcpState.CLOSED


def test_send_after_close_rejected(rig):
    sim, cluster, stacks = rig
    _server(stacks)
    conn = stacks[0].tcp.connect(1, 80)
    sim.run(until=1.0)
    conn.close()
    with pytest.raises(RuntimeError):
        conn.send_message(data="late")


def test_connect_to_non_listening_port_fails(rig):
    sim, cluster, stacks = rig
    conn = stacks[0].tcp.connect(1, 4444, initial_rto_s=0.1, max_retries=2)
    failed = []
    conn.on_close = lambda c, r: failed.append(r)
    sim.run(until=60.0)
    assert failed == ["max-retries"]


def test_data_queued_before_establishment_flows_after(rig):
    sim, cluster, stacks = rig
    inbox = _server(stacks)
    conn = stacks[0].tcp.connect(1, 80)
    conn.send_message(data="early", data_bytes=10)  # queued during SYN_SENT
    sim.run()
    assert inbox == [("early", 10)]


def test_window_limits_inflight_segments(rig):
    sim, cluster, stacks = rig
    inbox = _server(stacks)
    conn = stacks[0].tcp.connect(1, 80, window_segments=2)
    for i in range(6):
        conn.send_message(data=i, data_bytes=50)
    # At any instant, at most 2 unacked segments (checked post-run by delivery)
    sim.run()
    assert [d for d, _ in inbox] == list(range(6))


def test_bidirectional_messages(rig):
    sim, cluster, stacks = rig
    server_inbox = []

    def on_conn(server_conn):
        server_conn.on_message = lambda c, d, s: (server_inbox.append(d), c.send_message(data=f"re:{d}", data_bytes=8))

    stacks[1].tcp.listen(80, on_connect=on_conn)
    conn = stacks[0].tcp.connect(1, 80)
    replies = []
    conn.on_message = lambda c, d, s: replies.append(d)
    conn.send_message(data="hello", data_bytes=8)
    sim.run()
    assert server_inbox == ["hello"]
    assert replies == ["re:hello"]


def test_double_listen_rejected(rig):
    sim, cluster, stacks = rig
    stacks[0].tcp.listen(80)
    with pytest.raises(ValueError):
        stacks[0].tcp.listen(80)

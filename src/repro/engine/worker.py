"""``drs-worker``: one elastic member of a distributed worker fleet.

A worker connects to a :class:`~repro.engine.distributed.Coordinator`
(``drs-worker --coordinator HOST:PORT``), introduces itself (host, pid),
and then pulls job chunks until the coordinator says ``shutdown`` — the
worker is pure pull, so any number can join or leave at any point of a
run without coordination among themselves.

Each chunk runs through :func:`repro.engine.executors._run_chunk` — the
**same** function process-pool workers execute — so retries, timeouts,
quarantine, private metrics registries, silent heartbeat collection, and
buffered flight events all behave identically; the only difference is
that results travel back over a TCP frame instead of a pickle pipe.  A
daemon thread sends heartbeat frames so the coordinator can tell a slow
worker from a dead one.

Run it anywhere the coordinator's address is reachable and the repro
package (plus the experiment modules whose job functions it must import)
is installed.  On this machine, ``drs-experiments --backend distributed
--jobs N`` spawns N of these automatically.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
from typing import Any

from repro.engine.distributed import (
    PROTOCOL_VERSION,
    WORKER_CRASH_ENV,
    ProtocolError,
    job_from_wire,
    outcome_to_wire,
    parse_address,
    policy_from_wire,
    recv_frame,
    registry_to_wire,
    send_frame,
)
from repro.engine.executors import _run_chunk
from repro.engine.retry import JobError

__all__ = ["WorkerSession", "main"]

#: how long a worker keeps retrying the initial connect (the coordinator
#: may still be binding when spawned workers start)
CONNECT_RETRY_S = 20.0

#: a reply to ``next`` should be immediate; anything this quiet means the
#: coordinator is gone and the worker should exit rather than hang
REPLY_TIMEOUT_S = 60.0


class WorkerSession:
    """One worker's connection lifecycle against a coordinator address."""

    def __init__(self, host: str, port: int, *, quiet: bool = False) -> None:
        self.host = host
        self.port = port
        self.quiet = quiet
        self.sock: socket.socket | None = None
        self.send_lock = threading.Lock()
        self._stop_heartbeats = threading.Event()
        self._chunks_received = 0
        self._crash_after = self._parse_crash_injection()
        self.jobs_done = 0

    @staticmethod
    def _parse_crash_injection() -> int | None:
        raw = os.environ.get(WORKER_CRASH_ENV)
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
        return value if value >= 0 else None

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"[drs-worker {os.getpid()}] {message}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------ connection
    def connect(self) -> dict[str, Any]:
        """Dial the coordinator (with retry) and complete the handshake."""
        deadline = time.monotonic() + CONNECT_RETRY_S
        last_error: OSError | None = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=5.0)
                break
            except OSError as exc:
                last_error = exc
                time.sleep(0.2)
        else:
            raise SystemExit(
                f"drs-worker: cannot reach coordinator at {self.host}:{self.port}: {last_error}"
            )
        sock.settimeout(REPLY_TIMEOUT_S)
        self.sock = sock
        send_frame(
            sock,
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "host": socket.gethostname(),
                "pid": os.getpid(),
            },
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise SystemExit(f"drs-worker: bad handshake reply: {welcome!r}")
        if welcome.get("protocol") != PROTOCOL_VERSION:
            raise SystemExit(
                f"drs-worker: protocol mismatch (coordinator speaks "
                f"{welcome.get('protocol')}, this worker {PROTOCOL_VERSION})"
            )
        self._say(
            f"joined {self.host}:{self.port} as worker {welcome.get('worker')} "
            f"for experiment {welcome.get('experiment')!r}"
        )
        return welcome

    def _send(self, frame: dict[str, Any]) -> None:
        assert self.sock is not None
        with self.send_lock:
            send_frame(self.sock, frame)

    def _heartbeat_loop(self, interval_s: float) -> None:
        while not self._stop_heartbeats.wait(interval_s):
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                return

    # --------------------------------------------------------------- serving
    def serve(self) -> int:
        """Pull chunks until shutdown; returns the number of jobs run."""
        welcome = self.connect()
        assert self.sock is not None
        experiment = str(welcome["experiment"])
        seed = int(welcome["seed"])
        policy = policy_from_wire(welcome["policy"])
        interval_s = float(welcome.get("heartbeat_interval_s", 1.0))
        beats = threading.Thread(
            target=self._heartbeat_loop, args=(interval_s,), name="drs-worker-heartbeat",
            daemon=True,
        )
        beats.start()
        try:
            while True:
                self._send({"type": "next"})
                reply = recv_frame(self.sock)
                if reply is None:
                    self._say("coordinator closed the connection")
                    return self.jobs_done
                kind = reply.get("type")
                if kind == "idle":
                    time.sleep(float(reply.get("wait_s", 0.05)))
                elif kind == "chunk":
                    self._handle_chunk(experiment, seed, policy, reply)
                elif kind == "shutdown":
                    self._send({"type": "goodbye"})
                    self._say(f"done ({self.jobs_done} jobs); leaving")
                    return self.jobs_done
                else:
                    raise ProtocolError(f"unexpected frame from coordinator: {kind!r}")
        except (ConnectionError, socket.timeout):
            self._say("lost the coordinator; exiting")
            return self.jobs_done
        finally:
            self._stop_heartbeats.set()
            try:
                self.sock.close()
            except OSError:
                pass

    def _handle_chunk(self, experiment: str, seed: int, policy, reply: dict[str, Any]) -> None:
        self._chunks_received += 1
        if self._crash_after is not None and self._chunks_received > self._crash_after:
            # fault injection: die *mid-chunk* — the coordinator has handed
            # these jobs out and must detect the death and requeue them
            os.kill(os.getpid(), signal.SIGKILL)
        jobs = [job_from_wire(payload) for payload in reply["jobs"]]
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            outcomes, registry, hb_summary, flight_events = _run_chunk(
                experiment, seed, jobs, policy
            )
        except JobError as exc:
            # fail-fast policy: report which job sank the plan and let the
            # coordinator fail the run (our next "next" gets a shutdown)
            self._send(
                {
                    "type": "job_error",
                    "experiment": exc.experiment,
                    "job": exc.job_name,
                    "cause": exc.cause,
                }
            )
            return
        self.jobs_done += len(outcomes)
        self._send(
            {
                "type": "chunk_done",
                "outcomes": [outcome_to_wire(o) for o in outcomes],
                "registry": registry_to_wire(registry),
                "heartbeat": hb_summary,
                "flight": flight_events,
                "wall_s": time.perf_counter() - wall_start,
                "cpu_s": time.process_time() - cpu_start,
            }
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``drs-worker``."""
    parser = argparse.ArgumentParser(
        prog="drs-worker",
        description="Join a drs-experiments distributed run as a worker.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="HOST:PORT",
        help="address the coordinator printed (or was started with)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress join/leave chatter on stderr"
    )
    args = parser.parse_args(argv)
    try:
        host, port = parse_address(args.coordinator)
    except ValueError as exc:
        parser.error(str(exc))
    if port == 0:
        parser.error("a worker needs the coordinator's real port, not 0")
    session = WorkerSession(host, port, quiet=args.quiet)
    session.serve()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Operator-facing status reports for a DRS deployment.

Renders what a `drsadm status`-style tool would show on a live cluster:
per-daemon link beliefs, active repair routes, probe/control overhead, and
a one-line health verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drs.daemon import DrsDeployment
from repro.drs.state import LinkState
from repro.viz import render_table


@dataclass(frozen=True)
class DeploymentHealth:
    """Aggregate health of one deployment at a point in time."""

    nodes: int
    links_total: int
    links_up: int
    links_down: int
    links_unknown: int
    active_two_hop_routes: int
    unreachable_peers: int
    total_repairs: int
    total_probe_bytes: float

    @property
    def healthy(self) -> bool:
        """True when every monitored link is believed UP."""
        return self.links_up == self.links_total

    def verdict(self) -> str:
        """One-line summary."""
        if self.healthy:
            return f"HEALTHY: all {self.links_total} links up across {self.nodes} daemons"
        parts = [f"{self.links_down} links down"]
        if self.active_two_hop_routes:
            parts.append(f"{self.active_two_hop_routes} two-hop repairs active")
        if self.unreachable_peers:
            parts.append(f"{self.unreachable_peers} peer relations unreachable")
        return "DEGRADED: " + ", ".join(parts)


def deployment_health(deployment: DrsDeployment) -> DeploymentHealth:
    """Compute aggregate health across all daemons."""
    links_total = links_up = links_down = links_unknown = 0
    two_hop = 0
    unreachable = 0
    for daemon in deployment.daemons.values():
        for link in daemon.table.links():
            links_total += 1
            if link.state is LinkState.UP:
                links_up += 1
            elif link.state is LinkState.DOWN:
                links_down += 1
            elif link.state is LinkState.UNKNOWN:
                links_unknown += 1
        two_hop += len(daemon.failover.repaired_via)
        unreachable += len(daemon.failover.unreachable)
    return DeploymentHealth(
        nodes=len(deployment.daemons),
        links_total=links_total,
        links_up=links_up,
        links_down=links_down,
        links_unknown=links_unknown,
        active_two_hop_routes=two_hop,
        unreachable_peers=unreachable,
        total_repairs=deployment.total_repairs(),
        total_probe_bytes=deployment.total_probe_bytes(),
    )


def status_report(deployment: DrsDeployment, verbose: bool = False) -> str:
    """Render the deployment status as text.

    ``verbose`` adds the full per-daemon link table; the default shows only
    exceptions (anything not UP) plus the aggregate summary.
    """
    health = deployment_health(deployment)
    parts = [health.verdict()]

    summary_rows = [
        ["daemons", health.nodes],
        ["monitored links", health.links_total],
        ["links up / down / unknown", f"{health.links_up} / {health.links_down} / {health.links_unknown}"],
        ["active two-hop repairs", health.active_two_hop_routes],
        ["repairs performed", health.total_repairs],
        ["probe bytes sent", health.total_probe_bytes],
    ]
    parts.append(render_table(["metric", "value"], summary_rows, title="deployment summary"))

    exception_rows = []
    for node_id, daemon in sorted(deployment.daemons.items()):
        for link in daemon.table.links():
            if verbose or link.state is not LinkState.UP:
                exception_rows.append(
                    [
                        node_id,
                        link.peer,
                        link.network,
                        link.state.value,
                        link.consecutive_failures,
                        link.down_since if link.down_since is not None else "-",
                    ]
                )
        for target, router in sorted(daemon.failover.repaired_via.items()):
            exception_rows.append([node_id, target, "-", f"two-hop via {router}", "-", "-"])
    if exception_rows:
        parts.append(
            render_table(
                ["daemon", "peer", "network", "state", "misses", "down since"],
                exception_rows,
                title="link table" if verbose else "exceptions",
            )
        )
    return "\n\n".join(parts)

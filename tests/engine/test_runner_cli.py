"""The spec-registry-backed CLI: --jobs, --seed, and manifest provenance."""

import json

import pytest

from repro.experiments import runner


def test_list_prints_all_registered_specs(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("figure1", "figure2", "desval", "scenarios", "scaling"):
        assert name in out


def test_jobs_zero_means_all_cores(tmp_path):
    code = runner.main(
        ["--quick", "--no-metrics", "--jobs", "0", "--out", str(tmp_path), "scaling"]
    )
    assert code == 0
    assert (tmp_path / "scaling_scaling.csv").exists()


def test_negative_jobs_rejected(tmp_path):
    with pytest.raises(SystemExit):
        runner.main(["--quick", "--jobs", "-3", "--out", str(tmp_path), "figure2"])


def test_seed_override_reaches_sweep_experiments(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    args = ["--quick", "--no-metrics", "figure2"]
    assert runner.main([*args, "--out", str(a), "--seed", "1"]) == 0
    assert runner.main([*args, "--out", str(b), "--seed", "99"]) == 0
    assert (a / "figure2_equation1.csv").read_bytes() == (b / "figure2_equation1.csv").read_bytes()
    assert (a / "figure2_montecarlo.csv").read_bytes() != (b / "figure2_montecarlo.csv").read_bytes()


def test_manifest_records_engine_provenance(tmp_path):
    assert runner.main(["--quick", "--jobs", "2", "--out", str(tmp_path), "availability"]) == 0
    manifest = json.loads((tmp_path / "availability.manifest.json").read_text())
    assert manifest["extra"]["backend"] == "process-pool"
    assert manifest["extra"]["workers"] == 2
    engine = manifest["config"]["engine"]
    assert engine["backend"] == "process-pool"
    assert engine["workers"] == 2
    assert engine["jobs"] == len(engine["job_seeds"]) > 0


def test_non_parallel_experiment_ignores_jobs(tmp_path):
    assert runner.main(["--quick", "--jobs", "2", "--out", str(tmp_path), "figure1"]) == 0
    manifest = json.loads((tmp_path / "figure1.manifest.json").read_text())
    assert manifest["extra"]["backend"] == "direct"
    assert manifest["extra"]["workers"] == 1

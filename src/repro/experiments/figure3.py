"""FIG3 — "Convergence of Simulation Results to Equation Results".

Regenerates the paper's Figure 3: for f = 2..10, the mean absolute
difference between the Monte Carlo estimate and Equation 1 over f < N < 64,
as a function of iteration count (log10 x-axis).  The paper's stated
checkpoint: with 1,000 iterations the deviation is below ~0.01 for every f,
and it converges toward zero.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import convergence_study
from repro.experiments.base import ExperimentResult

ITERATION_GRID = (10, 30, 100, 300, 1_000, 3_000, 10_000)
F_VALUES = tuple(range(2, 11))


def run(
    f_values: tuple[int, ...] = F_VALUES,
    iteration_grid: tuple[int, ...] = ITERATION_GRID,
    n_max: int = 63,
    seed: int = 2000,
) -> ExperimentResult:
    """Regenerate Figure 3."""
    rng = np.random.default_rng(seed)
    study = convergence_study(list(f_values), list(iteration_grid), rng, n_max=n_max)
    result = ExperimentResult("figure3")
    result.meta = {
        "seed": seed,
        "f_values": list(f_values),
        "iteration_grid": list(iteration_grid),
        "n_max": n_max,
    }
    curves = {
        f"f={f}": (np.array(iteration_grid, dtype=float), study.series(f))
        for f in f_values
    }
    result.add_series(
        "mad",
        curves,
        caption="Figure 3: mean |simulation - Equation 1| over f<N<64",
        x_label="iterations",
        y_label="mean absolute deviation",
        x_log=True,
    )
    if 1_000 in iteration_grid:
        column = iteration_grid.index(1_000)
        rows = [[f, float(study.mad[i, column])] for i, f in enumerate(f_values)]
        result.add_table(
            "at_1000_iterations",
            ["f", "MAD at 1,000 iterations"],
            rows,
            caption="Paper checkpoint: MAD < ~0.01 at 1,000 iterations for every f",
        )
        worst = max(float(study.mad[i, column]) for i in range(len(f_values)))
        result.note(f"worst-case MAD at 1,000 iterations: {worst:.5f} (paper bound ~0.01)")
    # slope check: MC error should shrink ~ 1/sqrt(iterations)
    first, last = study.mad[:, 0].mean(), study.mad[:, -1].mean()
    expected_ratio = (iteration_grid[-1] / iteration_grid[0]) ** 0.5
    result.note(
        f"mean MAD shrank {first / last:.1f}x from {iteration_grid[0]} to "
        f"{iteration_grid[-1]} iterations (1/sqrt scaling predicts ~{expected_ratio:.1f}x)"
    )
    return result

"""Tests for the Figure-3 convergence study."""

import numpy as np
import pytest

from repro.analysis import convergence_study, mean_absolute_deviation


def test_mad_positive_and_bounded():
    rng = np.random.default_rng(0)
    mad = mean_absolute_deviation(f=3, iterations=100, rng=rng, n_max=20)
    assert 0 <= mad <= 1


def test_mad_shrinks_with_iterations():
    # the paper's claim: MAD converges to 0 as iterations grow
    rng = np.random.default_rng(1)
    coarse = mean_absolute_deviation(f=2, iterations=30, rng=rng, n_max=30)
    fine = mean_absolute_deviation(f=2, iterations=10_000, rng=rng, n_max=30)
    assert fine < coarse


def test_mad_at_1000_iterations_below_paper_bound():
    # "With 1,000 iterations, the mean absolute difference is less than
    # [0.01] for each of the fixed f values" (f = 2..10, f < N < 64)
    rng = np.random.default_rng(2)
    for f in (2, 6, 10):
        mad = mean_absolute_deviation(f=f, iterations=1_000, rng=rng)
        assert mad < 0.01, (f, mad)


def test_mad_empty_domain_raises():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        mean_absolute_deviation(f=10, iterations=10, rng=rng, n_max=10)


def test_convergence_study_grid_and_series():
    rng = np.random.default_rng(3)
    study = convergence_study([2, 3], [10, 100], rng, n_max=15)
    assert study.mad.shape == (2, 2)
    assert (study.mad >= 0).all()
    assert study.series(3).shape == (2,)
    assert study.f_values == (2, 3)
    assert study.iteration_grid == (10, 100)

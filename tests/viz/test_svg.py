"""Tests for SVG chart rendering and HTML reports."""

import pytest

from repro.viz.svg import svg_line_chart


def test_svg_structure_and_series():
    svg = svg_line_chart({"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [9, 4, 1])})
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<polyline") == 2
    assert ">a</text>" in svg and ">b</text>" in svg  # legend entries


def test_svg_title_and_labels_escaped():
    svg = svg_line_chart({"s": ([0, 1], [0, 1])}, title="A <B>", x_label="n & m", y_label="p")
    assert "A &lt;B&gt;" in svg
    assert "n &amp; m" in svg


def test_svg_log_axis():
    svg = svg_line_chart({"s": ([10, 100, 1000], [1, 2, 3])}, x_log=True, x_label="iters")
    assert "iters (log)" in svg
    with pytest.raises(ValueError):
        svg_line_chart({"s": ([0, 1], [1, 2])}, x_log=True)


def test_svg_validation():
    with pytest.raises(ValueError):
        svg_line_chart({})
    with pytest.raises(ValueError):
        svg_line_chart({"s": ([1], [1, 2])})
    with pytest.raises(ValueError):
        svg_line_chart({"s": ([1, 2], [1, 2])}, width=50)


def test_svg_constant_series_no_division_by_zero():
    svg = svg_line_chart({"flat": ([1, 2], [5, 5])})
    assert "<polyline" in svg


def test_result_render_html_and_index(tmp_path):
    from repro.experiments.base import ExperimentResult, write_html_index

    result = ExperimentResult("demo")
    result.add_table("t", ["a", "b"], [[1, 2.5]], caption="cap & more")
    result.add_series("s", {"c": ([1, 2], [3, 4])}, x_label="x")
    result.note("watch < this")
    html = result.render_html()
    assert "<h2>demo</h2>" in html
    assert "cap &amp; more" in html
    assert "<svg" in html
    assert "watch &lt; this" in html

    index = write_html_index([result], tmp_path)
    page = index.read_text()
    assert page.startswith("<!DOCTYPE html>")
    assert "<h2>demo</h2>" in page


def test_runner_html_flag(tmp_path):
    from repro.experiments.runner import main

    assert main(["crossovers", "--out", str(tmp_path), "--html"]) == 0
    assert (tmp_path / "index.html").exists()

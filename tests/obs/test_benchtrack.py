"""Bench regression tracking: snapshot diffing, CI-aware gates, CLI exit codes."""

import json
import math
from pathlib import Path

import pytest

from repro.obs.benchtrack import (
    BENCH_DIFF_EXIT_REGRESSION,
    bench_diff_report,
    collect_snapshots,
    diff_snapshots,
    relative_stderr,
    render_bench_diff,
)
from repro.obs.cli import main as obs_main

COMMITTED = Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_bench_sweep_kernel.json"
REGRESSED = Path(__file__).parent / "data" / "BENCH_bench_sweep_kernel_regressed.json"


def _snapshot(created, results, module="bench_demo"):
    return {"schema": 1, "module": module, "created_unix": created, "results": results}


def _row(fullname, mean, stddev=0.0, rounds=1, **extra):
    return {"fullname": fullname, "mean": mean, "stddev": stddev, "rounds": rounds, **extra}


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return path


class TestRelativeStderr:
    def test_stddev_over_mean_root_rounds(self):
        row = _row("t", mean=2.0, stddev=0.2, rounds=25)
        assert relative_stderr(row) == pytest.approx(0.2 / (2.0 * 5.0))

    def test_single_round_has_no_spread_information(self):
        assert relative_stderr(_row("t", mean=2.0, stddev=0.5, rounds=1)) == 0.0
        assert relative_stderr(_row("t", mean=0.0, stddev=0.5, rounds=10)) == 0.0


class TestDiffSnapshots:
    def test_flat_snapshots_report_no_regressions(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json", _snapshot(1.0, [_row("t::x", 1.0)]))
        b = _write(tmp_path / "BENCH_b.json", _snapshot(2.0, [_row("t::x", 1.01)]))
        deltas = diff_snapshots([a, b])
        assert len(deltas) == 1
        assert not deltas[0].regressed and not deltas[0].improved
        assert deltas[0].delta_frac == pytest.approx(0.01)

    def test_slowdown_beyond_threshold_regresses(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json", _snapshot(1.0, [_row("t::x", 1.0)]))
        b = _write(tmp_path / "BENCH_b.json", _snapshot(2.0, [_row("t::x", 1.25)]))
        (delta,) = diff_snapshots([a, b])
        assert delta.regressed
        assert delta.threshold_frac == pytest.approx(0.05)  # quiet benchmark: min_rel rules

    def test_noisy_benchmark_gets_a_wider_gate(self, tmp_path):
        noisy = _row("t::x", mean=1.0, stddev=0.5, rounds=4)  # rel SE = 0.25
        a = _write(tmp_path / "BENCH_a.json", _snapshot(1.0, [noisy]))
        b = _write(tmp_path / "BENCH_b.json", _snapshot(2.0, [_row("t::x", 1.25)]))
        (delta,) = diff_snapshots([a, b])
        assert delta.threshold_frac == pytest.approx(3.0 * 0.25)
        assert not delta.regressed  # +25% is inside a 75% noise gate

    def test_ops_is_higher_is_better(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json", _snapshot(1.0, [_row("t::x", 1.0, ops=100.0)]))
        b = _write(tmp_path / "BENCH_b.json", _snapshot(2.0, [_row("t::x", 1.0, ops=70.0)]))
        (delta,) = diff_snapshots([a, b], metric="ops")
        assert delta.regressed
        assert delta.delta_frac == pytest.approx(0.3)  # normalized: positive = worse

    def test_history_spans_all_snapshots_ordered_by_created_unix(self, tmp_path):
        # written out of order on purpose: created_unix decides base vs new
        _write(tmp_path / "BENCH_new.json", _snapshot(3.0, [_row("t::x", 3.0)]))
        _write(tmp_path / "BENCH_old.json", _snapshot(1.0, [_row("t::x", 1.0)]))
        _write(tmp_path / "BENCH_mid.json", _snapshot(2.0, [_row("t::x", 2.0)]))
        (delta,) = diff_snapshots([tmp_path])
        assert delta.base == 1.0 and delta.new == 3.0
        assert delta.history == [1.0, 2.0, 3.0]

    def test_unpaired_benchmarks_are_skipped(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json",
                   _snapshot(1.0, [_row("t::old", 1.0), _row("t::both", 1.0)]))
        b = _write(tmp_path / "BENCH_b.json",
                   _snapshot(2.0, [_row("t::new", 1.0), _row("t::both", 1.0)]))
        deltas = diff_snapshots([a, b])
        assert [d.fullname for d in deltas] == ["t::both"]

    def test_single_snapshot_is_an_error(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json", _snapshot(1.0, [_row("t::x", 1.0)]))
        with pytest.raises(ValueError, match="at least two snapshots"):
            diff_snapshots([a])

    def test_modules_diff_independently(self, tmp_path):
        _write(tmp_path / "BENCH_a1.json", _snapshot(1.0, [_row("t::x", 1.0)], module="m1"))
        _write(tmp_path / "BENCH_a2.json", _snapshot(2.0, [_row("t::x", 2.0)], module="m1"))
        _write(tmp_path / "BENCH_b1.json", _snapshot(1.0, [_row("t::y", 1.0)], module="m2"))
        groups = collect_snapshots([tmp_path])
        assert sorted(groups) == ["m1", "m2"]
        deltas = diff_snapshots([tmp_path])  # m2 has one snapshot: skipped, m1 diffs
        assert [d.module for d in deltas] == ["m1"]


class TestCommittedFixtures:
    def test_committed_regressed_fixture_trips_the_gate(self):
        deltas = diff_snapshots([COMMITTED, REGRESSED])
        assert len(deltas) == 4
        assert all(d.regressed for d in deltas)
        assert all(d.delta_frac == pytest.approx(0.25) for d in deltas)

    def test_self_diff_is_clean(self):
        deltas = diff_snapshots([COMMITTED, COMMITTED])
        assert deltas and not any(d.regressed for d in deltas)

    def test_history_has_no_nans_for_paired_benchmarks(self):
        for delta in diff_snapshots([COMMITTED, REGRESSED]):
            assert not any(math.isnan(v) for v in delta.history)


class TestRendering:
    def test_table_marks_regressions_and_sorts_worst_first(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json",
                   _snapshot(1.0, [_row("t::slow", 1.0), _row("t::ok", 1.0)]))
        b = _write(tmp_path / "BENCH_b.json",
                   _snapshot(2.0, [_row("t::slow", 1.5), _row("t::ok", 1.01)]))
        text = render_bench_diff(diff_snapshots([a, b]))
        assert "1 REGRESSION(S)" in text
        assert text.index("slow") < text.index("ok")  # worst movement first
        assert "REGRESSED" in text

    def test_report_payload(self, tmp_path):
        a = _write(tmp_path / "BENCH_a.json", _snapshot(1.0, [_row("t::x", 1.0)]))
        b = _write(tmp_path / "BENCH_b.json", _snapshot(2.0, [_row("t::x", 2.0)]))
        report = bench_diff_report(diff_snapshots([a, b]))
        assert report["metric"] == "mean"
        assert report["regressions"] == ["t::x"]
        assert report["deltas"][0]["delta_frac"] == pytest.approx(1.0)
        json.dumps(report)  # JSON-serializable end to end


class TestCli:
    def test_clean_diff_exits_zero(self, capsys):
        code = obs_main(["bench-diff", str(COMMITTED), str(COMMITTED)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys):
        code = obs_main(["bench-diff", str(COMMITTED), str(REGRESSED)])
        assert code == BENCH_DIFF_EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_report(self, capsys):
        code = obs_main(["bench-diff", "--json", str(COMMITTED), str(REGRESSED)])
        assert code == BENCH_DIFF_EXIT_REGRESSION
        report = json.loads(capsys.readouterr().out)
        assert len(report["regressions"]) == 4

    def test_bad_input_exits_one(self, capsys):
        assert obs_main(["bench-diff", str(COMMITTED)]) == 1
        assert "at least two snapshots" in capsys.readouterr().err

"""Tests for the MPI-flavoured messaging layer."""

import pytest

from repro.cluster import install_messaging
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


def _rig(n=4):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    comm = install_messaging(sim, stacks)
    return sim, cluster, stacks, comm


def test_send_and_receive_with_tag_and_payload():
    sim, cluster, stacks, comm = _rig()
    got = []
    comm.endpoint(1).on_receive(lambda src, tag, payload, size: got.append((src, tag, payload, size)))
    comm.endpoint(0).send(1, "work", {"k": 1}, size_bytes=512)
    sim.run()
    assert got == [(0, "work", {"k": 1}, 512)]
    assert comm.total_sent() == 1 and comm.total_received() == 1


def test_connection_reused_for_repeat_sends():
    sim, cluster, stacks, comm = _rig()
    for _ in range(5):
        comm.endpoint(0).send(1, "t", None, 10)
    sim.run()
    assert len(comm.endpoint(0)._out) == 1
    assert comm.total_received() == 5


def test_self_send_rejected():
    sim, cluster, stacks, comm = _rig()
    with pytest.raises(ValueError):
        comm.endpoint(0).send(0, "t", None, 0)


def test_broadcast_reaches_everyone_else():
    sim, cluster, stacks, comm = _rig()
    got = []
    for nid in range(4):
        comm.endpoint(nid).on_receive(lambda src, tag, p, s, nid=nid: got.append(nid))
    comm.endpoint(2).broadcast("all", None, 10, peers=list(range(4)))
    sim.run()
    assert sorted(got) == [0, 1, 3]


def test_latency_tracked_after_delivery():
    sim, cluster, stacks, comm = _rig()
    msg = comm.endpoint(0).send(1, "t", None, 100)
    assert comm.endpoint(0).latency_of(1, msg) is None  # not yet delivered
    sim.run()
    latency = comm.endpoint(0).latency_of(1, msg)
    assert latency is not None and latency > 0


def test_latency_of_unknown_peer_is_none():
    sim, cluster, stacks, comm = _rig()
    assert comm.endpoint(0).latency_of(3, 12345) is None


def test_messages_survive_failover_with_drs():
    from repro.drs import install_drs
    from tests.drs.conftest import FAST

    sim, cluster, stacks, comm = _rig(n=5)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    got = []
    comm.endpoint(1).on_receive(lambda src, tag, p, s: got.append(tag))
    comm.endpoint(0).send(1, "before", None, 64)
    sim.run(until=2.0)
    cluster.faults.fail("nic1.0")
    sim.run(until=3.0)
    comm.endpoint(0).send(1, "after", None, 64)
    sim.run(until=10.0)
    assert got == ["before", "after"]

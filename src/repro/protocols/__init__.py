"""Host protocol stack layered over :mod:`repro.netsim`.

The stack mirrors the slice of TCP/IP the DRS paper's clusters ran:

* :mod:`~repro.protocols.packet` — the L3 datagram and header-size constants,
* :mod:`~repro.protocols.routing` — the per-host routing table DRS rewrites,
* :mod:`~repro.protocols.ip` — forwarding network layer with TTL-based loop
  protection (nodes can act as routers, which is how DRS two-hop repair
  routes traffic around failures),
* :mod:`~repro.protocols.icmp` — echo request/reply, both routed and
  per-network direct (the DRS monitor probes each physical network
  explicitly),
* :mod:`~repro.protocols.udp` — datagram service used by DRS control
  messages,
* :mod:`~repro.protocols.tcp` — a reliable message stream with RTO and
  exponential backoff, used to measure whether failover beats the
  application-visible retransmission timeout,
* :mod:`~repro.protocols.stack` — the per-host bundle and cluster installer.
"""

from repro.protocols.packet import (
    ICMP_HEADER_BYTES,
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    Packet,
)
from repro.protocols.routing import Route, RouteSource, RoutingTable
from repro.protocols.ip import NetworkLayer
from repro.protocols.icmp import EchoReply, EchoRequest, IcmpService, PingResult, PingStatus
from repro.protocols.udp import Datagram, UdpService
from repro.protocols.tcp import TcpConnection, TcpSegment, TcpStack
from repro.protocols.stack import HostStack, build_host_stack, install_stacks

__all__ = [
    "Packet",
    "IP_HEADER_BYTES",
    "ICMP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "Route",
    "RouteSource",
    "RoutingTable",
    "NetworkLayer",
    "IcmpService",
    "EchoRequest",
    "EchoReply",
    "PingResult",
    "PingStatus",
    "UdpService",
    "Datagram",
    "TcpStack",
    "TcpConnection",
    "TcpSegment",
    "HostStack",
    "build_host_stack",
    "install_stacks",
]

"""Unit tests for the simulator event loop."""

import pytest

from repro.simkit import ScheduleInPastError, Simulator


def test_run_drains_queue_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(7.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7.5]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(1.0, lambda: None)


def test_schedule_nonfinite_raises():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(float("nan"), lambda: None)
    with pytest.raises(ScheduleInPastError):
        sim.schedule(float("inf"), lambda: None)


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(10.0, lambda: fired.append("b"))
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    # the later event survives and fires on the next run
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_same_time_rescheduling_is_fifo():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("first"), sim.schedule(0.0, lambda: fired.append("third"))))
    sim.schedule(1.0, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending == 1


def test_max_events_budget():
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run(max_events=100)
    assert count[0] == 100


def test_cancel_scheduled_event():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append("x"))
    sim.cancel(ev)
    sim.run()
    assert fired == []


def test_step_returns_false_on_empty():
    assert Simulator().step() is False

"""Pluggable survivability topologies.

The :class:`~repro.topology.model.Topology` dataclass describes a component
graph (typed roles, adjacency, an ordered failure universe, terminal
vertices) plus what "survived" means
(:class:`~repro.topology.model.ConnectivityPredicate`); the builder catalog
in :mod:`~repro.topology.builders` ships the paper's dual-hub cluster and
the generalized families ROADMAP item 2 names.  The vectorized kernels
that estimate survivability over any topology live in
:mod:`repro.analysis.topokernel`; see docs/topology.md.
"""

from repro.topology.builders import (
    TOPOLOGY_FAMILIES,
    build_topology,
    dual_hub_cluster,
    fat_tree_three_level,
    fat_tree_two_level,
    k_hub_cluster,
    multi_cluster_wan,
    parse_topology_spec,
    topology_catalog,
)
from repro.topology.model import (
    AllTerminalsConnected,
    ConnectivityPredicate,
    PairConnected,
    TerminalQuorum,
    Topology,
    reachable_from,
)

__all__ = [
    "Topology",
    "ConnectivityPredicate",
    "PairConnected",
    "AllTerminalsConnected",
    "TerminalQuorum",
    "reachable_from",
    "dual_hub_cluster",
    "k_hub_cluster",
    "fat_tree_two_level",
    "fat_tree_three_level",
    "multi_cluster_wan",
    "TOPOLOGY_FAMILIES",
    "topology_catalog",
    "parse_topology_spec",
    "build_topology",
]

#!/usr/bin/env python
"""A NOW/MPI-style parallel job riding out a NIC failure.

The paper's introduction motivates DRS with networks of workstations running
PVM/MPI codes: bulk-synchronous iterations where one dead link stalls every
rank.  This example runs a ring-halo BSP job on an 8-server cluster, kills a
NIC mid-run, and shows the per-iteration timeline: with DRS only the
iterations overlapping the repair window stretch; without it the job hangs.

Run:  python examples/mpi_job.py
"""

import statistics

from repro import DrsConfig, Simulator, build_dual_backplane_cluster, install_drs, install_stacks
from repro.cluster import MpiJobConfig, MpiRingJob, install_messaging


def run_job(with_drs: bool):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n=8)
    stacks = install_stacks(cluster)
    if with_drs:
        install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.25))
        sim.run(until=1.0)
    comm = install_messaging(sim, stacks)
    job = MpiRingJob(sim, comm, MpiJobConfig(iterations=60, compute_time_s=0.05, halo_bytes=16_384))
    job.start()
    sim.schedule(1.2, lambda: cluster.faults.fail("nic4.0"))  # mid-job failure
    sim.run(until=sim.now + 120.0)
    return job


def main() -> None:
    protected = run_job(with_drs=True)
    times = protected.stats.iteration_times
    median = statistics.median(times)
    slow = [(i, t) for i, t in enumerate(times) if t > 3 * median]
    print(f"with DRS: job {'completed' if protected.done else 'HUNG'}, "
          f"{protected.stats.completed_iterations} iterations")
    print(f"  median iteration {median * 1e3:.1f} ms, slowest {max(times) * 1e3:.1f} ms")
    print(f"  iterations stretched by the failure: {[i for i, _ in slow]} "
          f"(the repair window), everything else ran at full speed")

    unprotected = run_job(with_drs=False)
    print(f"\nwithout DRS: job {'completed' if unprotected.done else 'HUNG'} "
          f"after {unprotected.stats.completed_iterations} iterations — "
          f"the ring barrier never clears once rank 4 goes dark.")


if __name__ == "__main__":
    main()

"""The Topology dataclass: validation, predicates, views, metadata."""

import numpy as np
import pytest

from repro.topology import (
    AllTerminalsConnected,
    PairConnected,
    TerminalQuorum,
    Topology,
    dual_hub_cluster,
    reachable_from,
)

# a 4-vertex path: t0 -- a -- b -- t1, where only a and b can fail
PATH = Topology(
    name="path4",
    family="test",
    roles=("node", "relay", "relay", "node"),
    edges=((0, 1), (1, 2), (2, 3)),
    failure_sites=(1, 2),
    terminals=(0, 3),
)


class TestValidation:
    def test_minimal_valid_topology_builds(self):
        assert PATH.width == 2
        assert PATH.num_vertices == 4

    def test_rejects_out_of_range_edges_and_self_loops(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology("bad", "t", ("a", "b"), ((0, 5),), (0,), (1,))
        with pytest.raises(ValueError, match="self-loop"):
            Topology("bad", "t", ("a", "b"), ((1, 1),), (0,), (1,))

    def test_rejects_duplicate_failure_sites(self):
        with pytest.raises(ValueError, match="unique"):
            Topology("bad", "t", ("a", "b", "c"), ((0, 1),), (0, 0), (1,))

    def test_terminals_must_be_immortal(self):
        with pytest.raises(ValueError, match="immortal"):
            Topology("bad", "t", ("a", "b"), ((0, 1),), (0, 1), (1,))

    def test_weights_must_match_sites_and_be_positive(self):
        with pytest.raises(ValueError, match="weights length"):
            Topology("bad", "t", ("a", "b", "c"), ((0, 1), (1, 2)), (1,), (0,),
                     weights=(1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            Topology("bad", "t", ("a", "b", "c"), ((0, 1), (1, 2)), (1,), (0,),
                     weights=(0.0,))

    def test_validate_f_names_topology_and_component_count(self):
        with pytest.raises(ValueError, match="2 failable components, got 3"):
            PATH.validate_f(3)
        with pytest.raises(ValueError, match="got -1"):
            PATH.validate_f(-1)
        PATH.validate_f(0)
        PATH.validate_f(2)


class TestReachability:
    def test_reference_bfs_walks_the_path(self):
        adjacency = PATH.adjacency_sets()
        assert reachable_from(adjacency, lambda v: True, 0) == {0, 1, 2, 3}
        assert reachable_from(adjacency, lambda v: v != 1, 0) == {0}
        assert reachable_from(adjacency, lambda v: v != 1, 3) == {1 + 1, 3}

    def test_dead_start_reaches_nothing(self):
        assert reachable_from(PATH.adjacency_sets(), lambda v: False, 0) == set()

    def test_adjacency_matrix_is_symmetric_and_matches_sets(self):
        adj = PATH.adjacency_matrix()
        assert adj.dtype == np.float32
        assert (adj == adj.T).all()
        sets = PATH.adjacency_sets()
        for v in range(PATH.num_vertices):
            assert set(np.flatnonzero(adj[v])) == set(sets[v])


class TestPredicates:
    def test_pair_connected_breaks_when_the_path_breaks(self):
        assert PATH.connected(())
        assert not PATH.connected((0,))  # failing site 0 = vertex 1 cuts the path
        assert not PATH.connected((1,))

    def test_all_terminals_predicate(self):
        pred = AllTerminalsConnected()
        assert PATH.connected((), pred)
        assert not PATH.connected((0,), pred)

    def test_quorum_requires_a_strict_majority(self):
        topo = dual_hub_cluster(4)
        pred = TerminalQuorum()
        assert pred.required(topo) == 3  # 4 terminals -> strict majority
        assert topo.connected((), pred)
        # both hubs down: every node is isolated, no quorum anywhere
        assert not topo.connected((0, 1), pred)

    def test_quorum_fraction_validation(self):
        with pytest.raises(ValueError, match="quorum fraction"):
            TerminalQuorum(fraction=1.5)

    def test_describe_labels(self):
        assert PairConnected(0, 1).describe() == "pair(0,1)"
        assert TerminalQuorum(0.5).describe() == "quorum(0.5)"
        assert AllTerminalsConnected().describe() == "all-terminals"


class TestMetadata:
    def test_describe_block_is_manifest_ready(self):
        block = dual_hub_cluster(3).describe()
        assert block["family"] == "dual-hub"
        assert block["width"] == 8
        assert block["roles"] == {"hub": 2, "nic": 6}
        assert block["predicate"] == "pair(0,1)"
        assert block["n"] == 3
        assert block["weighted"] is False

    def test_site_index_inverts_failure_sites(self):
        topo = dual_hub_cluster(2)
        index = topo.site_index()
        for pos, site in enumerate(topo.failure_sites):
            assert index[site] == pos

"""Tests for the reactive-rerouting baseline."""

import pytest

from repro.baselines import ReactiveConfig, install_reactive
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import RouteSource, install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import routed_ping_ok

FAST = ReactiveConfig(query_interval_s=0.5, timeout_s=1.0, probe_timeout_s=0.01, discovery_timeout_s=0.02)


def _rig(n=5, config=FAST):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    deployment = install_reactive(cluster, stacks, config)
    sim.run(until=2.0)
    return sim, cluster, stacks, deployment


def test_config_validation():
    with pytest.raises(ValueError):
        ReactiveConfig(query_interval_s=0)
    with pytest.raises(ValueError):
        ReactiveConfig(query_interval_s=5.0, timeout_s=1.0)


def test_healthy_cluster_changes_nothing():
    sim, cluster, stacks, deployment = _rig()
    for src in range(5):
        for dst in range(5):
            if src != dst:
                assert stacks[src].table.lookup(dst).source is RouteSource.STATIC


def test_nic_failure_detected_only_after_timeout():
    sim, cluster, stacks, deployment = _rig()
    t_fail = sim.now
    cluster.faults.fail("nic1.0")
    sim.run(until=t_fail + 5.0)
    repairs = [e for e in cluster.trace.entries("reactive-repair") if e.fields["node"] == 0 and e.fields["peer"] == 1]
    assert repairs, "reactive router never repaired"
    # detection cannot be faster than the timeout quantum
    assert repairs[0].time - t_fail >= FAST.timeout_s
    route = stacks[0].table.lookup(1)
    assert route.source is RouteSource.REACTIVE and route.network == 1
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_hub_failure_recovers_cluster_wide():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("hub0")
    sim.run(until=sim.now + 6.0)
    for src in range(5):
        for dst in range(5):
            if src != dst:
                assert stacks[src].table.lookup(dst).network == 1, (src, dst)
    assert routed_ping_ok(sim, stacks, 2, 4)


def test_crossed_failure_two_hop_repair():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 8.0)
    route = stacks[0].table.lookup(1)
    assert route is not None and not route.direct
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_no_background_probe_traffic_before_failure():
    # reactive queries are routed pings at query_interval; compare with DRS
    # full-mesh per-network probing: far fewer wire bits
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 5)
    stacks = install_stacks(cluster)
    install_reactive(cluster, stacks, FAST)
    sim.run(until=10.0)
    bits = cluster.backplanes[0].bits_carried.value + cluster.backplanes[1].bits_carried.value
    # 5 nodes * 4 peers / 0.5s interval * ~20s-of-pings: each ping 2*84 bytes
    # over 10s: 5*4*(10/0.5) = 400 pings = 400*2*84*8 bits ~ 0.54 Mb
    assert bits < 1.2e6


def test_stop_and_restart():
    sim, cluster, stacks, deployment = _rig()
    deployment.stop()
    q = sum(r.queries.value for r in deployment.routers.values())
    sim.run(until=sim.now + 3.0)
    assert sum(r.queries.value for r in deployment.routers.values()) == q
    deployment.start()
    sim.run(until=sim.now + 3.0)
    assert sum(r.queries.value for r in deployment.routers.values()) > q


def test_total_repairs_counter():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 5.0)
    assert deployment.total_repairs() >= 1

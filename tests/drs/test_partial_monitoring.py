"""Partial monitoring: daemons configured with a subset of peers.

The paper: "Each DRS demon is configured to monitor hosts on the networks"
— configuration, not discovery.  A daemon repairs only what it watches.
"""

from repro.drs.daemon import DrsDaemon
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST, routed_ping_ok


def _partial_rig():
    """Node 0 monitors only nodes 1 and 2; everyone else monitors everyone."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 5)
    stacks = install_stacks(cluster)
    all_ids = [n.node_id for n in cluster.nodes]
    daemons = {}
    for node in cluster.nodes:
        peers = [0, 1, 2] if node.node_id == 0 else all_ids
        daemons[node.node_id] = DrsDaemon(sim, stacks[node.node_id], peers, FAST, trace=cluster.trace)
        daemons[node.node_id].start()
    sim.run(until=1.0)
    return sim, cluster, stacks, daemons


def test_monitored_subset_only():
    sim, cluster, stacks, daemons = _partial_rig()
    assert daemons[0].table.peers() == [1, 2]
    assert daemons[1].table.peers() == [0, 2, 3, 4]


def test_monitored_peer_still_repaired():
    sim, cluster, stacks, daemons = _partial_rig()
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    assert stacks[0].table.lookup(1).network == 1
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_unmonitored_peer_not_repaired_by_node0():
    sim, cluster, stacks, daemons = _partial_rig()
    cluster.faults.fail("nic4.0")
    sim.run(until=sim.now + 1.0)
    # node 0 never probes node 4, so its static (broken) route stays
    route = stacks[0].table.lookup(4)
    assert route.network == 0
    assert not routed_ping_ok(sim, stacks, 0, 4)
    # ...while a full-mesh daemon repaired its own route fine
    assert stacks[1].table.lookup(4).network == 1
    assert routed_ping_ok(sim, stacks, 1, 4)


def test_partial_monitor_still_volunteers_for_monitored_targets():
    sim, cluster, stacks, daemons = _partial_rig()
    # crossed failure between 1 and 2: node 0 monitors both, can volunteer
    cluster.faults.fail("nic1.1")
    cluster.faults.fail("nic2.0")
    sim.run(until=sim.now + 2.0)
    assert routed_ping_ok(sim, stacks, 1, 2)

"""MPI-flavoured message layer over TCP-lite.

``ClusterComm`` gives the workloads a familiar tagged send/receive interface
while inheriting reliability (and failure sensitivity!) from the transport:
when the network breaks, message latencies stretch by exactly the outage the
routing layer could not hide — which is the application-visible metric the
failover experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.netsim.addresses import NodeId
from repro.protocols.stack import HostStack
from repro.protocols.tcp import TcpConnection
from repro.simkit import Counter, Simulator

#: Well-known TCP port of the messaging endpoint.
MSG_PORT = 7000

ReceiveHandler = Callable[[NodeId, str, Any, int], None]


@dataclass(frozen=True, slots=True)
class _Envelope:
    """What actually travels as TCP message data."""

    src: NodeId
    tag: str
    payload: Any


class Endpoint:
    """One node's messaging endpoint: lazy outbound connections, one inbox."""

    def __init__(self, sim: Simulator, stack: HostStack) -> None:
        self.sim = sim
        self.stack = stack
        self._out: dict[NodeId, TcpConnection] = {}
        self._handlers: list[ReceiveHandler] = []
        self.sent = Counter(f"msg{stack.node.node_id}.sent")
        self.received = Counter(f"msg{stack.node.node_id}.received")
        #: completion time of every delivered outbound message, by handle
        self.delivery_latencies: list[float] = []
        stack.tcp.listen(MSG_PORT, on_message=self._on_message)

    @property
    def node_id(self) -> NodeId:
        """The node this endpoint runs on."""
        return self.stack.node.node_id

    # ------------------------------------------------------------------ send
    def send(self, dst: NodeId, tag: str, payload: Any = None, size_bytes: int = 0) -> int:
        """Reliably send a tagged message; returns the transport message id."""
        if dst == self.node_id:
            raise ValueError("self-sends do not traverse the network; deliver locally instead")
        from repro.protocols.tcp import TcpState

        conn = self._out.get(dst)
        if conn is None or conn.state in (TcpState.CLOSED, TcpState.FAILED, TcpState.FIN_SENT):
            conn = self.stack.tcp.connect(dst, MSG_PORT)
            self._out[dst] = conn
        msg_id = conn.send_message(data=_Envelope(src=self.node_id, tag=tag, payload=payload), data_bytes=size_bytes)
        self.sent.add()
        return msg_id

    def broadcast(self, tag: str, payload: Any, size_bytes: int, peers: list[NodeId]) -> list[int]:
        """Send the same message to every peer (sequential unicast, like PVM)."""
        return [self.send(p, tag, payload, size_bytes) for p in peers if p != self.node_id]

    def latency_of(self, dst: NodeId, msg_id: int) -> float | None:
        """Delivery (cumulative-ACK) latency of a sent message, if known yet."""
        conn = self._out.get(dst)
        if conn is None:
            return None
        return conn.message_latencies.get(msg_id)

    # --------------------------------------------------------------- receive
    def on_receive(self, handler: ReceiveHandler) -> None:
        """Register ``handler(src, tag, payload, size_bytes)`` for deliveries."""
        self._handlers.append(handler)

    def _on_message(self, conn: TcpConnection, data: Any, size: int) -> None:
        envelope: _Envelope = data
        self.received.add()
        for handler in self._handlers:
            handler(envelope.src, envelope.tag, envelope.payload, size)


@dataclass
class ClusterComm:
    """All endpoints of one cluster."""

    endpoints: dict[NodeId, Endpoint] = field(default_factory=dict)

    def endpoint(self, node_id: NodeId) -> Endpoint:
        """The endpoint on one node."""
        return self.endpoints[node_id]

    def total_sent(self) -> int:
        """Cluster-wide sent-message count."""
        return sum(int(e.sent.value) for e in self.endpoints.values())

    def total_received(self) -> int:
        """Cluster-wide delivered-message count."""
        return sum(int(e.received.value) for e in self.endpoints.values())


def install_messaging(sim: Simulator, stacks: dict[NodeId, HostStack]) -> ClusterComm:
    """Create an endpoint on every node."""
    return ClusterComm(endpoints={nid: Endpoint(sim, stack) for nid, stack in stacks.items()})

"""Statistical regression tests: MC vs closed form, and sampler uniformity.

Pinned seeds make these deterministic: they are regression tests on the
estimator pipeline (sampler + predicate + mean), not flaky coin flips.  The
acceptance bands are pre-registered statistical intervals — a Wilson 99.9%
CI around the Monte Carlo estimate must cover Equation 1, and a chi-square
test at alpha=0.001 must not reject uniformity of the sampled failure sets.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.analysis.exact import success_probability
from repro.analysis.montecarlo import sample_failure_matrix, simulate_success_probability
from repro.analysis.stats import wilson_interval

PINNED_SEED = 12345
MC_ITERATIONS = 20_000

#: (n, f) grid for the MC-vs-exact regression.
GRID = [(n, f) for n in (4, 8, 16) for f in (2, 3, 4)]

#: chi-square critical values at alpha = 0.001 for the degrees of freedom
#: used below (no scipy at runtime).
CHI2_CRIT_0P001 = {14: 36.123, 19: 43.820}


@pytest.mark.parametrize("n,f", GRID)
def test_mc_agrees_with_exact_within_wilson_999_ci(n, f):
    p_hat = simulate_success_probability(n, f, MC_ITERATIONS, seed=PINNED_SEED)
    successes = round(p_hat * MC_ITERATIONS)
    estimate = wilson_interval(successes, MC_ITERATIONS, confidence=0.999)
    exact = success_probability(n, f)
    assert estimate.low <= exact <= estimate.high, (
        f"n={n} f={f}: exact {exact:.6f} outside Wilson 99.9% CI "
        f"[{estimate.low:.6f}, {estimate.high:.6f}] around MC {p_hat:.6f} "
        f"({MC_ITERATIONS} iterations, seed {PINNED_SEED})"
    )
    assert abs(p_hat - exact) <= estimate.half_width


def test_wilson_999_confidence_is_supported():
    estimate = wilson_interval(500, 1000, confidence=0.999)
    assert estimate.low < 0.5 < estimate.high
    # tighter confidence -> wider interval
    assert estimate.half_width > wilson_interval(500, 1000, confidence=0.95).half_width
    # arbitrary levels resolve through the inverse-normal fallback now
    assert wilson_interval(500, 1000, confidence=0.42).half_width < estimate.half_width
    with pytest.raises(ValueError, match="confidence"):
        wilson_interval(500, 1000, confidence=1.0)


@pytest.mark.parametrize("f,df", [(2, 14), (3, 19)])
def test_failure_sets_uniform_at_n2_chi_square(f, df):
    """Every C(6, f) failure set at n=2 should be equally likely."""
    n = 2
    width = 2 * n + 2
    categories = {subset: i for i, subset in enumerate(combinations(range(width), f))}
    assert len(categories) == df + 1

    rng = np.random.default_rng(PINNED_SEED)
    draws = 30_000
    failed = sample_failure_matrix(n, f, draws, rng)
    counts = np.zeros(len(categories), dtype=int)
    for row in failed:
        counts[categories[tuple(np.flatnonzero(row))]] += 1

    assert counts.sum() == draws
    assert (counts > 0).all()  # every subset reachable
    expected = draws / len(categories)
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    assert chi2 < CHI2_CRIT_0P001[df], (
        f"chi-square {chi2:.2f} exceeds the alpha=0.001 critical value "
        f"{CHI2_CRIT_0P001[df]} for df={df}: sampler is not uniform over "
        f"C({width},{f}) failure sets"
    )

"""FIG1 — "Response Time VS Number of Nodes for a 100mbs Network".

Regenerates the paper's Figure 1: for probe-bandwidth budgets of 5/10/15/25%
of a 100 Mb/s segment, the error-resolution (full probe sweep) time as a
function of cluster size, with the paper's read-off table of the largest
cluster supportable within 1 s per budget.

A DES cross-validation runs a real DRS deployment paced for a budget and
checks that the probe traffic measured on the simulated wire actually lands
at that budget — i.e. the analytic curve describes the implemented system.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cost import frame_size_sensitivity, max_nodes_within, response_time_curve, sweep_time_s
from repro.drs import DrsConfig, install_drs
from repro.engine import ExperimentSpec, register
from repro.experiments.base import ExperimentResult
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

BUDGETS = (0.05, 0.10, 0.15, 0.25)


def measured_probe_fraction(n: int, budget: float, sim_seconds: float = 10.0) -> float:
    """Run a DRS cluster paced for ``budget`` and measure wire utilization."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    config = DrsConfig.paced_for(n, budget, probe_timeout_s=0.005)
    install_drs(cluster, stacks, config)
    warmup = config.sweep_period_s  # let the staggered monitors fill the pipe
    sim.run(until=warmup)
    start_bits = [bp.bits_carried.value for bp in cluster.backplanes]
    start_t = sim.now
    sim.run(until=warmup + sim_seconds)
    fractions = [
        (bp.bits_carried.value - b0) / (bp.bandwidth_bps * (sim.now - start_t))
        for bp, b0 in zip(cluster.backplanes, start_bits)
    ]
    return float(np.mean(fractions))


def run(
    n_max: int = 120,
    budgets: tuple[float, ...] = BUDGETS,
    validate_des: bool = True,
    des_nodes: int = 10,
) -> ExperimentResult:
    """Regenerate Figure 1 (and optionally cross-validate against the DES)."""
    result = ExperimentResult("figure1")
    ns = np.arange(2, n_max + 1)
    curves = response_time_curve(ns, budgets=list(budgets))
    result.add_series(
        "response_time",
        {f"{int(b * 100)}%": (ns, curves[b]) for b in budgets},
        caption="Figure 1: probe-sweep response time vs nodes, 100 Mb/s",
        x_label="nodes",
        y_label="response time (s)",
    )
    rows = [
        [f"{int(b * 100)}%", max_nodes_within(1.0, b), float(sweep_time_s(90, b))]
        for b in budgets
    ]
    result.add_table(
        "readoff",
        ["budget", "max nodes within 1s", "sweep time at N=90 (s)"],
        rows,
        caption="Figure 1 read-offs (paper: ~90 hosts < 1 s at 10%)",
    )
    result.note(
        "paper checkpoint: 'ninety hosts are supported in less than 1 second with "
        f"only 10% of the bandwidth usage'; model: T(90, 10%) = {sweep_time_s(90, 0.10):.3f} s, "
        f"max nodes within 1 s at 10% = {max_nodes_within(1.0, 0.10)}"
    )
    result.add_table(
        "frame_size_sensitivity",
        ["probe wire bytes", "max nodes within 1s @10%", "sweep at N=90 (s)"],
        [list(row) for row in frame_size_sensitivity()],
        caption="Sensitivity to the paper's unpublished probe frame size",
    )
    if validate_des:
        des_rows = []
        for budget in budgets:
            measured = measured_probe_fraction(des_nodes, budget)
            des_rows.append([f"{int(budget * 100)}%", budget, measured, measured / budget])
        result.add_table(
            "des_validation",
            ["budget", "target fraction", "measured fraction", "ratio"],
            des_rows,
            caption=f"DES cross-validation: measured probe load on the wire, N={des_nodes}",
        )
    return result


register(
    ExperimentSpec(
        name="figure1",
        run=run,
        profiles={"quick": {"n_max": 100, "validate_des": True, "des_nodes": 6}, "full": {}},
        order=10,
        description="Fig. 1 response time vs N per probe-bandwidth budget",
    )
)

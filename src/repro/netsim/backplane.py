"""Shared-medium backplane (hub) model.

The paper's clusters attach every server to two hub-based 100 Mb/s segments.
A hub repeats frames to all ports, and the segment behaves as one shared
transmission resource, so the model here is a single FIFO server with the
segment's bit rate: transmissions serialize through the hub; each frame then
propagates to its destination NIC (or, for broadcast, to all attached NICs).

The backplane accounts every bit it carries, which is what the Figure-1
cross-validation reads back (DRS probe overhead as a fraction of capacity).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.addresses import NetworkId
from repro.netsim.component import Component, ComponentKind
from repro.netsim.frames import Frame
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.simkit import Counter, Simulator, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.netsim.nic import Nic


class Backplane(Component):
    """One shared-medium network segment with finite capacity.

    Parameters
    ----------
    sim:
        The owning simulator.
    network_id:
        Which of the two cluster networks this is (0 or 1).
    bandwidth_bps:
        Segment bit rate; the paper's Figure 1 uses 100 Mb/s.
    prop_delay_s:
        One-way propagation + hub repeat latency applied after serialization.
    trace:
        Optional shared trace recorder for drop/delivery events.
    """

    def __init__(
        self,
        sim: Simulator,
        network_id: NetworkId,
        bandwidth_bps: float = 100e6,
        prop_delay_s: float = 5e-6,
        trace: TraceRecorder | None = None,
        loss_rate: float = 0.0,
        rng=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name=f"hub{network_id}", kind=ComponentKind.HUB)
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
        if prop_delay_s < 0:
            raise ValueError(f"prop_delay_s must be >= 0, got {prop_delay_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and rng is None:
            raise ValueError("a loss_rate needs an rng for loss draws")
        self.sim = sim
        self.network_id = network_id
        self.bandwidth_bps = float(bandwidth_bps)
        self.prop_delay_s = float(prop_delay_s)
        self.trace = trace
        #: per-frame random loss probability (bit errors, collisions, noise);
        #: distinct from hard component failure — a lossy segment is still up
        self.loss_rate = float(loss_rate)
        self._rng = rng
        self._nics: dict[int, "Nic"] = {}
        self._medium_free_at = 0.0
        self.bits_carried = Counter(f"hub{network_id}.bits")
        self.frames_carried = Counter(f"hub{network_id}.frames")
        self.frames_dropped = Counter(f"hub{network_id}.drops")
        registry = resolve_registry(metrics)
        self._m_bits = registry.counter("net_bits_carried_total")
        self._m_drops = registry.counter("net_frames_dropped_total")
        self._m_queue_depth = registry.histogram("net_queue_depth_seconds")

    # ------------------------------------------------------------ attachment
    def attach(self, nic: "Nic") -> None:
        """Attach a NIC; its address's node id must be unique on this segment."""
        node = nic.addr.node
        if node in self._nics:
            raise ValueError(f"node {node} already has a NIC on network {self.network_id}")
        if nic.addr.network != self.network_id:
            raise ValueError(f"NIC {nic.addr} does not belong on network {self.network_id}")
        self._nics[node] = nic

    @property
    def attached(self) -> list["Nic"]:
        """All NICs attached to this segment (up or down)."""
        return list(self._nics.values())

    # ------------------------------------------------------------- transport
    def transmit(self, frame: Frame, sender: "Nic") -> None:
        """Serialize ``frame`` through the shared medium and deliver it.

        If the hub is down, the frame is silently lost (the sender cannot
        tell — exactly the failure mode DRS probing exists to detect).
        """
        if not self.up:
            self._drop(frame, reason="hub-down")
            return
        now = self.sim.now
        tx_time = frame.wire_bits / self.bandwidth_bps
        start = max(now, self._medium_free_at)
        self._m_queue_depth.observe(start - now)
        done = start + tx_time
        self._medium_free_at = done
        self.bits_carried.add(frame.wire_bits)
        self.frames_carried.add()
        self._m_bits.add(frame.wire_bits)
        self.sim.schedule_at(done + self.prop_delay_s, lambda: self._deliver(frame, sender))

    def set_loss_rate(self, loss_rate: float, rng=None) -> None:
        """Change the random frame-loss probability at runtime."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if rng is not None:
            self._rng = rng
        if loss_rate > 0.0 and self._rng is None:
            raise ValueError("a loss_rate needs an rng for loss draws")
        self.loss_rate = float(loss_rate)

    def _deliver(self, frame: Frame, sender: "Nic") -> None:
        # Failure state is evaluated at delivery time: a hub that died while
        # the frame was in flight loses it.
        if not self.up:
            self._drop(frame, reason="hub-died-in-flight")
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self._drop(frame, reason="random-loss")
            return
        if frame.dst.is_broadcast():
            for node, nic in self._nics.items():
                if nic is not sender:
                    nic.deliver(frame)
        else:
            nic = self._nics.get(frame.dst.node)
            if nic is None:
                self._drop(frame, reason="no-such-node")
            else:
                nic.deliver(frame)

    def _drop(self, frame: Frame, reason: str) -> None:
        self.frames_dropped.add()
        self._m_drops.add()
        if self.trace is not None and self.trace.wants("drop"):
            self.trace.record(
                "drop", where=self.name, reason=reason, frame=str(frame), network=self.network_id
            )

    # ------------------------------------------------------------- metering
    def utilization(self) -> float:
        """Mean fraction of capacity used since the start of the simulation.

        For windowed measurements, snapshot :attr:`bits_carried` at the window
        edges and divide the delta by ``bandwidth_bps * window``.
        """
        duration = self.sim.now
        if duration <= 0:
            return 0.0
        return self.bits_carried.value / (self.bandwidth_bps * duration)

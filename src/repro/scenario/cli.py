"""``drs-sim``: run scenario files from the command line.

Usage::

    drs-sim examples/scenarios/nic_failure_drs.json
    drs-sim --compare examples/scenarios/nic_failure_*.json
    drs-sim --metrics-out /tmp/obs examples/scenarios/nic_failure_drs.json

``--metrics-out DIR`` writes, per scenario, a run manifest plus metrics
snapshots (JSONL + Prometheus text), the event trace as JSONL, and — when
the run recorded causal spans — a ``<name>.spans.json`` Chrome trace-event
file loadable in Perfetto.  Inspect them with ``repro obs DIR``; rebuild
the span views offline with ``repro obs export-trace`` / ``postmortem``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    ensure_core_metrics,
    install_profiling,
    write_metrics_files,
    write_trace_jsonl,
)
from repro.obs.spans import span_log, write_chrome_trace
from repro.scenario.run import run_scenario
from repro.scenario.spec import ScenarioError, load_scenario
from repro.viz import render_table


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="drs-sim",
        description="Run declarative DRS cluster scenarios (JSON specs).",
    )
    parser.add_argument("scenarios", nargs="+", help="scenario JSON files")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="render one side-by-side table instead of per-scenario reports",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        default=None,
        help="write per-scenario manifest, metrics snapshot, and trace JSONL here",
    )
    args = parser.parse_args(argv)

    obs_dir = Path(args.metrics_out) if args.metrics_out else None
    if obs_dir is not None:
        install_profiling()

    reports = []
    for path in args.scenarios:
        metrics = ensure_core_metrics(MetricsRegistry())
        started = time.perf_counter()
        try:
            spec = load_scenario(path)
            report = run_scenario(spec, metrics=metrics)
        except ScenarioError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        if obs_dir is not None:
            manifest = RunManifest.build(
                name=spec.name,
                kind="scenario",
                seed=spec.seed,
                config=dataclasses.asdict(spec),
                wall_seconds=time.perf_counter() - started,
                event_count=int(metrics.counter("sim_events_total").value),
                source=str(path),
            )
            obs_dir.mkdir(parents=True, exist_ok=True)
            manifest.write(obs_dir / f"{spec.name}.manifest.json")
            write_metrics_files(metrics, obs_dir, spec.name)
            if report.trace is not None:
                write_trace_jsonl(report.trace, obs_dir / f"{spec.name}.trace.jsonl")
                spans = span_log(report.trace).spans
                if spans:
                    write_chrome_trace(
                        obs_dir / f"{spec.name}.spans.json", spans, report.trace.entries()
                    )
        if not args.compare:
            print(report.render())
            print()

    if args.compare:
        workload_keys = sorted({k for r in reports for k in r.workload_metrics})
        headers = ["metric"] + [r.spec.name for r in reports]
        rows: list[list] = [
            ["routing repairs"] + [r.routing_repairs for r in reports],
            ["route changes"] + [r.route_changes for r in reports],
            ["mean segment utilization"] + [r.wire_utilization for r in reports],
        ]
        for key in workload_keys:
            rows.append([key] + [r.workload_metrics.get(key, "-") for r in reports])
        print(render_table(headers, rows, title="scenario comparison"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

# Convenience targets for the DRS reproduction.

PYTHON ?= python

.PHONY: install test lint smoke bench experiments experiments-quick quick-parallel quick-resume quick-distributed quick-sweep quick-flight quick-precision quick-topology quick-variance bench-gate examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m compileall -q src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipped (compileall passed)"; \
	fi

# end-to-end check: a quick experiment must emit its observability artifacts
smoke:
	rm -rf /tmp/drs-smoke
	$(PYTHON) -m repro.experiments.runner --quick figure2 --out /tmp/drs-smoke
	test -f /tmp/drs-smoke/figure2.manifest.json
	test -f /tmp/drs-smoke/figure2.metrics.jsonl
	test -f /tmp/drs-smoke/figure2.metrics.prom
	grep -q drs_probe_rtt_seconds /tmp/drs-smoke/figure2.metrics.jsonl
	grep -q drs_failover_latency_seconds /tmp/drs-smoke/figure2.metrics.jsonl
	$(PYTHON) -m repro obs /tmp/drs-smoke
	@echo "smoke: OK"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner --out results --html

experiments-quick:
	$(PYTHON) -m repro.experiments.runner --quick --out results

# quick suite on the process-pool backend, then prove --jobs changed nothing:
# rerun the two MC-heavy sweeps serially and diff the CSVs byte-for-byte
quick-parallel:
	rm -rf results-parallel /tmp/drs-serial-check
	$(PYTHON) -m repro.experiments.runner --quick --out results-parallel --jobs 2
	$(PYTHON) -m repro.experiments.runner --quick --out /tmp/drs-serial-check --jobs 1 figure2 availability
	@for f in figure2_equation1 figure2_montecarlo figure2_endpoints availability_downtime availability_weighted; do \
		cmp results-parallel/$$f.csv /tmp/drs-serial-check/$$f.csv || exit 1; \
	done
	@echo "quick-parallel: OK (serial and process-pool outputs identical)"

# fault-tolerance smoke: run a quick sweep, SIGKILL it mid-checkpoint (the
# engine's DRS_ENGINE_CRASH_AFTER injection hook), resume it, and prove the
# resumed CSVs are byte-identical to an uninterrupted run
quick-resume:
	rm -rf results-resume /tmp/drs-resume-check
	$(PYTHON) -m repro.experiments.runner --quick figure2 --out /tmp/drs-resume-check
	-DRS_ENGINE_CRASH_AFTER=50 $(PYTHON) -m repro.experiments.runner --quick figure2 --out results-resume
	test -f results-resume/figure2.checkpoint.jsonl
	test ! -f results-resume/figure2_montecarlo.csv
	$(PYTHON) -m repro.experiments.runner --resume results-resume
	@for f in figure2_equation1 figure2_montecarlo figure2_endpoints; do \
		cmp results-resume/$$f.csv /tmp/drs-resume-check/$$f.csv || exit 1; \
	done
	@echo "quick-resume: OK (killed + resumed run byte-identical to uninterrupted)"

# distributed smoke: the loopback coordinator + 2 spawned workers must
# reproduce the serial quick figure2 CSVs byte-for-byte, record per-host
# attribution and worker.join events, and survive a worker killed mid-chunk
# (crash injection) with the stolen jobs re-executed elsewhere
quick-distributed:
	rm -rf /tmp/drs-dist-serial /tmp/drs-dist /tmp/drs-dist-faulty
	$(PYTHON) -m repro.experiments.runner --quick figure2 --out /tmp/drs-dist-serial
	$(PYTHON) -m repro.experiments.runner --quick figure2 \
		--backend distributed --jobs 2 --out /tmp/drs-dist
	@for f in figure2_equation1 figure2_montecarlo figure2_endpoints; do \
		cmp /tmp/drs-dist/$$f.csv /tmp/drs-dist-serial/$$f.csv || exit 1; \
	done
	grep -q '"kind": "worker.join"' /tmp/drs-dist/figure2.flight.jsonl
	grep -q '"hosts"' /tmp/drs-dist/figure2.manifest.json
	DRS_WORKER_CRASH_AFTER_CHUNKS=1 $(PYTHON) -m repro.experiments.runner \
		--quick figure2 --backend distributed --jobs 2 --out /tmp/drs-dist-faulty
	@for f in figure2_equation1 figure2_montecarlo figure2_endpoints; do \
		cmp /tmp/drs-dist-faulty/$$f.csv /tmp/drs-dist-serial/$$f.csv || exit 1; \
	done
	grep -q '"kind": "worker.leave"' /tmp/drs-dist-faulty/figure2.flight.jsonl
	grep -q '"kind": "job.stolen"' /tmp/drs-dist-faulty/figure2.flight.jsonl
	@echo "quick-distributed: OK (serial/distributed byte-identical, dead worker tolerated)"

# perf smoke: the common-random-numbers sweep kernel must never be slower
# than per-point estimation (quick profile: reduced iteration count; the
# committed BENCH_bench_sweep_kernel.json holds the full-profile numbers)
quick-sweep:
	BENCH_TELEMETRY_DIR= SWEEP_BENCH_ITERATIONS=100000 \
		$(PYTHON) -m pytest benchmarks/bench_sweep_kernel.py --benchmark-only -q
	@echo "quick-sweep: OK (kernel at least as fast as per-point)"

# flight-recorder smoke: a parallel quick run must leave a tailable flight
# stream that exports to a schema-valid Perfetto trace with one track per
# worker, replays in the watch dashboard, and renders via obs --json
quick-flight:
	rm -rf /tmp/drs-flight
	$(PYTHON) -m repro.experiments.runner --quick figure2 --jobs 4 --out /tmp/drs-flight
	test -f /tmp/drs-flight/figure2.flight.jsonl
	grep -q '"kind": "worker.spawn"' /tmp/drs-flight/figure2.flight.jsonl
	grep -q '"kind": "run.end"' /tmp/drs-flight/figure2.flight.jsonl
	grep -q flight_recorder /tmp/drs-flight/figure2.manifest.json
	$(PYTHON) -m repro obs export-trace /tmp/drs-flight/figure2.flight.jsonl
	$(PYTHON) -c "import json; from repro.obs.spans import validate_chrome_trace; \
		trace = json.load(open('/tmp/drs-flight/figure2.chrome.json')); \
		problems = validate_chrome_trace(trace); assert not problems, problems; \
		tracks = {e['args']['name'] for e in trace['traceEvents'] \
			if e.get('ph') == 'M' and e.get('name') == 'process_name'}; \
		workers = sum(1 for t in tracks if t.startswith('worker ')); \
		assert 'scheduler' in tracks and workers == 4, tracks"
	$(PYTHON) -m repro obs watch /tmp/drs-flight/figure2.flight.jsonl --once --no-color
	$(PYTHON) -m repro obs --json /tmp/drs-flight/figure2.flight.jsonl > /dev/null
	@echo "quick-flight: OK (flight stream -> 4 worker tracks + scheduler, watch replays)"

# statistical-observability smoke: an adaptive quick run must emit per-cell
# CI columns, stats.cell flight telemetry, a manifest precision block that
# shows real trial savings, and render through the precision verb and the
# watch panel
quick-precision:
	rm -rf /tmp/drs-precision
	$(PYTHON) -m repro.experiments.runner --quick figure2 --target-ci 0.01 --out /tmp/drs-precision
	test -f /tmp/drs-precision/figure2_mc_precision.csv
	head -1 /tmp/drs-precision/figure2_mc_precision.csv | grep -q ci_low
	grep -q '"kind": "stats.cell"' /tmp/drs-precision/figure2.flight.jsonl
	grep -q '"precision"' /tmp/drs-precision/figure2.manifest.json
	$(PYTHON) -m repro obs precision /tmp/drs-precision/figure2.flight.jsonl
	$(PYTHON) -c "import json, subprocess, sys; \
		out = subprocess.run([sys.executable, '-m', 'repro', 'obs', 'precision', \
			'/tmp/drs-precision/figure2.manifest.json', '--json'], \
			capture_output=True, text=True, check=True).stdout; \
		report = json.loads(out); \
		assert report['cells'] and report['met_target'] == report['cells'], report; \
		assert report['trials_saved_fraction'] > 0, report"
	$(PYTHON) -m repro obs watch /tmp/drs-precision/figure2.flight.jsonl --once --no-color | grep 'at target'
	@echo "quick-precision: OK (adaptive run met its CI target with trials to spare)"

# topology smoke: the whole builder catalog must sweep end-to-end with
# topology metadata in the manifest and topology-labelled precision cells;
# a --topology-restricted run must reproduce its slice of the full sweep
# byte-for-byte; and the dual-hub fast path must stay within 1.3x of the
# specialized kernel (quick bench profile)
quick-topology:
	rm -rf /tmp/drs-topology /tmp/drs-topology-one
	$(PYTHON) -m repro.experiments.runner --quick topologysweep --out /tmp/drs-topology
	@for t in dual-hub khub_hubs3 fattree2 fattree3 multicluster; do \
		test -f /tmp/drs-topology/topologysweep_mc_$$t.csv || exit 1; \
	done
	grep -q '"topologies"' /tmp/drs-topology/topologysweep.manifest.json
	grep -q '"family": "fattree3"' /tmp/drs-topology/topologysweep.manifest.json
	grep -q '"topology": "dual-hub' /tmp/drs-topology/topologysweep.flight.jsonl
	$(PYTHON) -m repro obs precision /tmp/drs-topology/topologysweep.flight.jsonl | grep -q multicluster
	$(PYTHON) -m repro obs watch /tmp/drs-topology/topologysweep.flight.jsonl --once --no-color | grep -q 'ci: '
	$(PYTHON) -m repro.experiments.runner --quick topologysweep --topology khub:hubs=3 --out /tmp/drs-topology-one
	cmp /tmp/drs-topology/topologysweep_mc_khub_hubs3.csv /tmp/drs-topology-one/topologysweep_mc_khub_hubs3.csv
	BENCH_TELEMETRY_DIR= TOPOLOGY_BENCH_ITERATIONS=100000 \
		$(PYTHON) -m pytest benchmarks/bench_topology_kernel.py --benchmark-only -q
	@echo "quick-topology: OK (catalog sweeps, metadata recorded, fast path within 1.3x)"

# variance-reduction smoke: a stratified-cv adaptive run must label its
# precision cells and flight events with the estimator method, render
# through the precision verb, and beat crude CRN by >= 3x trials at equal
# CI width (quick bench profile; the committed
# BENCH_bench_variance_reduction.json holds the full-profile numbers)
quick-variance:
	rm -rf /tmp/drs-variance
	$(PYTHON) -m repro.experiments.runner --quick figure2 --target-ci 0.01 \
		--mc-method stratified-cv --out /tmp/drs-variance
	head -1 /tmp/drs-variance/figure2_mc_precision.csv | grep -q method
	grep -q 'stratified-cv' /tmp/drs-variance/figure2_mc_precision.csv
	grep -q '"method": "stratified-cv"' /tmp/drs-variance/figure2.flight.jsonl
	grep -q '"mc_method": "stratified-cv"' /tmp/drs-variance/figure2.manifest.json
	$(PYTHON) -m repro obs precision /tmp/drs-variance/figure2.flight.jsonl > /dev/null
	$(PYTHON) -m repro obs watch /tmp/drs-variance/figure2.flight.jsonl --once --no-color \
		| grep -q 'stratified-cv'
	BENCH_TELEMETRY_DIR= VARIANCE_BENCH_TARGET=0.002 \
		$(PYTHON) -m pytest benchmarks/bench_variance_reduction.py --benchmark-only -q
	@echo "quick-variance: OK (stratified-cv labelled end-to-end, >= 3x fewer trials)"

# perf gate: the committed snapshots vs themselves must pass; vs the +25%
# regression fixture it must exit nonzero (proving the gate actually trips)
bench-gate:
	$(PYTHON) -m repro obs bench-diff \
		benchmarks/BENCH_bench_sweep_kernel.json benchmarks/BENCH_bench_sweep_kernel.json
	$(PYTHON) -m repro obs bench-diff \
		benchmarks/BENCH_bench_topology_kernel.json benchmarks/BENCH_bench_topology_kernel.json
	$(PYTHON) -m repro obs bench-diff \
		benchmarks/BENCH_bench_variance_reduction.json \
		benchmarks/BENCH_bench_variance_reduction.json
	! $(PYTHON) -m repro obs bench-diff \
		benchmarks/BENCH_bench_sweep_kernel.json \
		tests/obs/data/BENCH_bench_sweep_kernel_regressed.json
	@echo "bench-gate: OK (clean diffs pass, injected regression trips)"

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf results results-parallel results-resume .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +

"""A bulk-synchronous (MPI-style) parallel job — the paper's NOW motivation.

The introduction motivates DRS with NOW/PVM/MPI clusters: tightly coupled
iterative computations where *every* iteration ends in communication, so a
single slow link stalls the whole job (the classic BSP straggler effect).

The model: each iteration, every worker computes for ``compute_time_s``,
then exchanges a halo message with both ring neighbours, and the next
iteration starts only when all of a worker's expected halos have arrived
(a distributed barrier realized by the data dependencies themselves).

Metric: per-iteration wall time.  A network failure inflates exactly the
iterations that overlap the outage — by the full routing-repair latency
under reactive schemes, and by roughly one probe sweep under DRS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.messaging import ClusterComm
from repro.simkit import Process, Signal, Simulator


@dataclass(frozen=True)
class MpiJobConfig:
    """Shape of the iterative job."""

    iterations: int = 50
    compute_time_s: float = 0.05
    halo_bytes: int = 8_192

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.compute_time_s < 0:
            raise ValueError("compute_time_s must be >= 0")
        if self.halo_bytes < 0:
            raise ValueError("halo_bytes must be >= 0")


@dataclass
class MpiJobStats:
    """Per-iteration timing of the whole job (completion of the slowest rank)."""

    iteration_times: list[float] = field(default_factory=list)

    @property
    def completed_iterations(self) -> int:
        """Iterations finished by every rank."""
        return len(self.iteration_times)

    def mean_iteration_s(self) -> float:
        """Mean wall time per iteration."""
        return float(np.mean(self.iteration_times)) if self.iteration_times else 0.0

    def max_iteration_s(self) -> float:
        """Slowest iteration (the failure signature)."""
        return float(max(self.iteration_times)) if self.iteration_times else 0.0

    def median_iteration_s(self) -> float:
        """Median wall time per iteration (robust baseline)."""
        return float(np.median(self.iteration_times)) if self.iteration_times else 0.0


class MpiRingJob:
    """Runs the BSP ring-halo job over a messaging layer."""

    def __init__(self, sim: Simulator, comm: ClusterComm, config: MpiJobConfig) -> None:
        self.sim = sim
        self.comm = comm
        self.config = config
        self.ranks = sorted(comm.endpoints)
        if len(self.ranks) < 3:
            raise ValueError("the ring job needs at least 3 ranks")
        self.stats = MpiJobStats()
        self._procs: list[Process] = []
        # halos[rank][iteration] -> set of neighbours heard from
        self._halos: dict[int, dict[int, set[int]]] = {r: {} for r in self.ranks}
        self._waiting: dict[int, object] = {}
        self._iteration_started_at: dict[int, float] = {}
        self._ranks_done_iter: dict[int, int] = {}
        self.finished = False
        for rank in self.ranks:
            comm.endpoint(rank).on_receive(self._make_receiver(rank))

    def _neighbours(self, rank: int) -> tuple[int, int]:
        idx = self.ranks.index(rank)
        return (
            self.ranks[(idx - 1) % len(self.ranks)],
            self.ranks[(idx + 1) % len(self.ranks)],
        )

    # ---------------------------------------------------------------- driving
    def start(self) -> None:
        """Launch one process per rank."""
        self._iteration_started_at[0] = self.sim.now
        for rank in self.ranks:
            self._procs.append(Process(self.sim, self._rank_body(rank), name=f"mpi.rank{rank}"))

    def _make_receiver(self, rank: int):
        def on_receive(src: int, tag: str, payload, size: int) -> None:
            if not tag.startswith("halo-"):
                return
            iteration = int(tag.split("-", 1)[1])
            arrived = self._halos[rank].setdefault(iteration, set())
            arrived.add(src)
            waiter = self._waiting.get(rank)
            if waiter is not None:
                waiter.fire(None)

        return on_receive

    def _rank_body(self, rank: int):
        left, right = self._neighbours(rank)
        endpoint = self.comm.endpoint(rank)
        for iteration in range(self.config.iterations):
            yield self.config.compute_time_s
            endpoint.send(left, f"halo-{iteration}", None, self.config.halo_bytes)
            endpoint.send(right, f"halo-{iteration}", None, self.config.halo_bytes)
            while len(self._halos[rank].get(iteration, ())) < 2:
                sig = Signal(f"halo{rank}@{iteration}")
                self._waiting[rank] = sig
                yield sig
                self._waiting.pop(rank, None)
            self._rank_finished_iteration(rank, iteration)
        # rank done

    def _rank_finished_iteration(self, rank: int, iteration: int) -> None:
        self._ranks_done_iter[rank] = iteration
        if all(self._ranks_done_iter.get(r, -1) >= iteration for r in self.ranks):
            started = self._iteration_started_at.pop(iteration, None)
            if started is not None:
                self.stats.iteration_times.append(self.sim.now - started)
            if iteration + 1 < self.config.iterations:
                self._iteration_started_at.setdefault(iteration + 1, self.sim.now)
            else:
                self.finished = True

    @property
    def done(self) -> bool:
        """True once every rank has completed every iteration."""
        return self.finished

#!/usr/bin/env python
"""Proactive vs reactive routing: the paper's core comparison, measured.

Injects the same NIC failure under four routing regimes and reports what a
TCP application stream experienced — repair latency, worst message delay,
and steady-state probe cost.  DRS's proactive probing pays bandwidth to buy
detection latency; the reactive/RIP-style baselines pay nothing and wait out
their timeout quantum.

Run:  python examples/proactive_vs_reactive.py
"""

from repro.experiments.failover import PROTOCOLS, run_one
from repro.viz import render_table


def main() -> None:
    rows = []
    for protocol in PROTOCOLS:
        outcome = run_one(protocol, "peer-nic", post_failure_s=30.0)
        rows.append([
            protocol,
            f"{outcome.delivered_fraction:.1%}",
            "yes" if outcome.recovered else "NO",
            f"{outcome.repair_latency_s:.2f}" if outcome.repair_latency_s is not None else "never",
            f"{outcome.worst_latency_s:.2f}" if outcome.delivered else "-",
            f"{outcome.overhead_bps / 1e3:.1f}",
        ])
    print(render_table(
        ["protocol", "delivered", "recovered", "repair (s)", "worst app delay (s)", "probe cost (kb/s)"],
        rows,
        title="One NIC failure, four routing regimes (6-node cluster)",
    ))
    print("\nthe proactive bet: DRS burns a steady trickle of probe bandwidth to fix "
          "the route within ~1 sweep — inside the TCP retransmit window — while "
          "reactive designs stall the application for their whole timeout quantum.")


if __name__ == "__main__":
    main()

"""Seed-spawning contract: name-keyed streams are stable and independent."""

import numpy as np
import pytest

from repro.simkit.rng import seed_fingerprint, spawn_seedseq, spawned_rng


def test_spawn_seedseq_is_deterministic():
    a = spawn_seedseq(2000, "figure2", "mc/f=2/n=10")
    b = spawn_seedseq(2000, "figure2", "mc/f=2/n=10")
    assert seed_fingerprint(a) == seed_fingerprint(b)
    assert (a.generate_state(4) == b.generate_state(4)).all()


def test_spawn_seedseq_distinct_names_distinct_streams():
    fingerprints = {
        seed_fingerprint(spawn_seedseq(2000, "figure2", f"mc/f={f}/n={n}"))
        for f in range(2, 11)
        for n in range(f + 1, 64)
    }
    # every (experiment, job) pair gets its own stream — no collisions
    assert len(fingerprints) == sum(63 - f for f in range(2, 11))


def test_spawn_seedseq_root_seed_matters():
    a = spawn_seedseq(1, "exp", "job")
    b = spawn_seedseq(2, "exp", "job")
    assert seed_fingerprint(a) != seed_fingerprint(b)


def test_spawned_rng_streams_are_independent():
    x = spawned_rng(7, "exp", "job/a").random(1000)
    y = spawned_rng(7, "exp", "job/b").random(1000)
    assert abs(np.corrcoef(x, y)[0, 1]) < 0.1


def test_spawned_rng_reproducible():
    assert spawned_rng(7, "a", "b").random(5).tolist() == spawned_rng(7, "a", "b").random(5).tolist()


@pytest.mark.parametrize("names", [("exp",), ("exp", "job"), ("exp", "job", "rep/0")])
def test_spawn_depth_changes_stream(names):
    deeper = names + ("child",)
    assert seed_fingerprint(spawn_seedseq(0, *names)) != seed_fingerprint(spawn_seedseq(0, *deeper))

"""Unit tests for the routing table."""

import pytest

from repro.protocols import Route, RouteSource, RoutingTable


def _direct(dst, net=0, source=RouteSource.STATIC):
    return Route(dst=dst, network=net, next_hop=dst, source=source)


def test_install_and_lookup():
    t = RoutingTable(owner=0)
    t.install(_direct(1))
    route = t.lookup(1)
    assert route.direct and route.network == 0 and route.next_hop == 1
    assert t.lookup(2) is None


def test_install_defaults_skips_self():
    t = RoutingTable(owner=2)
    t.install_defaults([0, 1, 2, 3], network=1)
    assert len(t) == 3
    assert 2 not in t
    assert all(r.network == 1 and r.direct for r in t)


def test_route_to_self_rejected():
    t = RoutingTable(owner=0)
    with pytest.raises(ValueError):
        t.install(_direct(0))


def test_self_next_hop_rejected():
    t = RoutingTable(owner=0)
    with pytest.raises(ValueError):
        t.install(Route(dst=1, network=0, next_hop=0))


def test_drs_install_shadows_static_and_withdraw_restores():
    t = RoutingTable(owner=0)
    t.install(_direct(1, net=0, source=RouteSource.STATIC))
    drs_route = Route(dst=1, network=1, next_hop=1, source=RouteSource.DRS)
    t.install(drs_route)
    assert t.lookup(1) is drs_route
    restored = t.withdraw(1, RouteSource.DRS)
    assert restored is not None
    assert restored.source is RouteSource.STATIC and restored.network == 0
    assert t.lookup(1) is restored


def test_withdraw_wrong_source_is_noop():
    t = RoutingTable(owner=0)
    t.install(_direct(1, source=RouteSource.STATIC))
    active = t.withdraw(1, RouteSource.DRS)
    assert active is t.lookup(1)
    assert active.source is RouteSource.STATIC


def test_withdraw_without_shadow_removes():
    t = RoutingTable(owner=0)
    t.install(_direct(1, source=RouteSource.DRS))
    assert t.withdraw(1, RouteSource.DRS) is None
    assert t.lookup(1) is None


def test_same_source_reinstall_does_not_shadow_itself():
    t = RoutingTable(owner=0)
    t.install(Route(dst=1, network=0, next_hop=1, source=RouteSource.DRS))
    t.install(Route(dst=1, network=1, next_hop=1, source=RouteSource.DRS))
    # withdrawing once removes it entirely; no stale self-shadow comes back
    assert t.withdraw(1, RouteSource.DRS) is None


def test_replace_network_installs_direct():
    t = RoutingTable(owner=0)
    r = t.replace_network(3, network=1, source=RouteSource.DRS, now=5.0)
    assert t.lookup(3) is r and r.direct and r.installed_at == 5.0


def test_change_listener_and_count():
    t = RoutingTable(owner=0)
    changes = []
    t.on_change(lambda dst, route: changes.append((dst, route.network if route else None)))
    t.install(_direct(1, net=0))
    t.install(Route(dst=1, network=1, next_hop=1, source=RouteSource.DRS))
    t.withdraw(1, RouteSource.DRS)
    assert changes == [(1, 0), (1, 1), (1, 0)]
    assert t.change_count == 3


def test_iter_sorted_and_snapshot():
    t = RoutingTable(owner=0)
    t.install(_direct(3))
    t.install(_direct(1))
    assert [r.dst for r in t] == [1, 3]
    snap = t.snapshot()
    t.withdraw(1, RouteSource.STATIC)
    assert 1 in snap and 1 not in t


def test_route_str_forms():
    assert "direct" in str(_direct(1))
    assert "via 5" in str(Route(dst=1, network=0, next_hop=5))

"""Whole-cluster survivability: every pair must stay connected.

Equation 1 is pairwise.  The natural strengthening — the *cluster* survives
iff every pair of servers can still communicate — matters for workloads
(like the voice-mail system) where any server may need any other.  Under
DRS reachability the communication graph is the union of two cliques (one
per surviving network), which yields a clean closed form:

With both hubs up, all-pairs connectivity holds iff no node lost both NICs
("cover") and either some node kept both NICs (bridging the cliques) or one
network kept every node.  Counting failure sets of f NICs:

* ``f < n``: cover sets are exactly "one NIC per f distinct nodes"
  (``C(n,f)·2^f``), and any untouched node bridges — all good.
* ``f = n``: cover forces one NIC per node and no bridge remains, so only
  the two all-on-one-network sets keep a full clique — 2 good sets.
* ``f > n``: cover is impossible — 0.

With exactly one hub down (2 ways), the surviving network must be complete:
the remaining ``f-1`` failures must all land on the dead network's NICs —
``C(n, f-1)`` sets.  Both hubs down kills everything.  Hence::

    G_all(n, f) = [f < n] C(n,f) 2^f  +  [f = n] 2  +  2 C(n, f-1)
    P_all(n, f) = G_all(n, f) / C(2n+2, f)

Validated against exhaustive enumeration in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.combinatorics import comb0
from repro.analysis.exact import _validate


def allpairs_good_combinations(n: int, f: int) -> int:
    """Failure sets of size ``f`` keeping *every* pair connected."""
    _validate(n, f)
    if f < n:
        hubs_up = comb0(n, f) * 2**f
    elif f == n:
        hubs_up = 2
    else:
        hubs_up = 0
    one_hub = 2 * comb0(n, f - 1)
    return hubs_up + one_hub


def allpairs_success_probability(n: int, f: int) -> float:
    """P[every pair of the N servers can still communicate]."""
    total = comb0(2 * n + 2, f)
    if total == 0:
        raise ValueError(f"no failure sets of size {f} exist for N={n}")
    return allpairs_good_combinations(n, f) / total


def allpairs_success_curve(f: int, n_max: int = 63, n_min: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs survivability versus N for fixed ``f``.

    For fixed f this still converges to 1 (a bounded number of failures
    spreads over ever more nodes), but strictly below the pairwise curve
    and much more slowly — e.g. P_all(20, 4) ≈ 0.71 where Equation 1 gives
    0.95.  The regime where the two models *diverge qualitatively* is iid
    component failures (failure count growing with N): see
    :func:`repro.analysis.availability.iid_allpairs_success_probability`,
    where all-pairs availability eventually *decays* with cluster size.
    """
    if n_min is None:
        n_min = max(2, f + 1)
    if n_min > n_max:
        raise ValueError(f"empty N range [{n_min}, {n_max}]")
    ns = np.arange(n_min, n_max + 1)
    ps = np.array([allpairs_success_probability(int(n), f) for n in ns])
    return ns, ps


def allpairs_connected_vec(failed: np.ndarray) -> np.ndarray:
    """Vectorized all-pairs predicate over a failure matrix.

    ``failed`` is the boolean matrix from
    :func:`repro.analysis.montecarlo.sample_failure_matrix`.
    """
    hub0_up = ~failed[:, 0:1]
    hub1_up = ~failed[:, 1:2]
    up0 = ~failed[:, 2::2] & hub0_up   # node i reachable on network 0
    up1 = ~failed[:, 3::2] & hub1_up
    cover = (up0 | up1).all(axis=1)
    bridge = (up0 & up1).any(axis=1)
    full0 = up0.all(axis=1)
    full1 = up1.all(axis=1)
    return cover & (bridge | full0 | full1)


def simulate_allpairs_success(n: int, f: int, iterations: int, rng: np.random.Generator, batch: int = 200_000) -> float:
    """Monte Carlo estimate of the all-pairs survivability."""
    from repro.analysis.montecarlo import sample_failure_matrix

    remaining = iterations
    good = 0
    while remaining > 0:
        size = min(remaining, batch)
        failed = sample_failure_matrix(n, f, size, rng)
        good += int(allpairs_connected_vec(failed).sum())
        remaining -= size
    return good / iterations

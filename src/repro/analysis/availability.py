"""Availability planning: from component lifetimes to downtime minutes.

The paper's conditional model answers "given f failures, does the pair
survive?"  Operators ask the unconditional, time-domain question: *how many
minutes per year is server-to-server communication down?*  With components
failing independently (exponential MTBF) and being repaired (MTTR), each
component is down with stationary probability ``rho = MTTR / (MTBF + MTTR)``
independently — and conditioned on the number of down components, the down
*set* is uniform, which is exactly the regime Equation 1 covers.  Binomial
mixing is therefore exact for the structural part::

    P[pair ok] = sum_f  Binom(2N+2, rho, f) * P_Eq1(N, f)

On top sits the transient term the structural model cannot see: each
failure *event* that hits the pair's active path costs one DRS
detection+repair latency of outage even though redundancy absorbs the
failure structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import success_probability

MINUTES_PER_YEAR = 365.25 * 24 * 60


def component_unavailability(mtbf_hours: float, mttr_hours: float) -> float:
    """Stationary per-component down probability ``rho``."""
    if mtbf_hours <= 0 or mttr_hours < 0:
        raise ValueError("mtbf_hours must be positive and mttr_hours >= 0")
    return mttr_hours / (mtbf_hours + mttr_hours)


def iid_success_probability(n: int, rho: float, f_max: int | None = None) -> float:
    """Structural pair availability under iid component up/down states."""
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    width = 2 * n + 2
    if f_max is None:
        f_max = width
    f_max = min(f_max, width)
    fs = np.arange(f_max + 1)
    # Binomial pmf via logs to stay stable for large N
    from math import comb, log

    log_rho = np.log(rho) if rho > 0 else -np.inf
    log_1mrho = np.log1p(-rho)
    total = 0.0
    for f in fs:
        if rho == 0 and f > 0:
            break
        log_pmf = log(comb(width, int(f))) + (f * log_rho if f else 0.0) + (width - f) * log_1mrho
        total += np.exp(log_pmf) * success_probability(n, int(f))
    return float(total)


def iid_allpairs_success_probability(n: int, rho: float, f_max: int | None = None) -> float:
    """Whole-cluster availability under iid component up/down states.

    Unlike the pairwise mixture, this *decays* once the expected number of
    down components ``rho * (2N+2)`` outgrows the redundancy — every extra
    server adds two more NICs whose simultaneous loss isolates it.  The
    crossover against :func:`iid_success_probability` is the planning
    boundary between "any pair" and "the whole cluster" guarantees.
    """
    from repro.analysis.allpairs import allpairs_success_probability

    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    width = 2 * n + 2
    if f_max is None:
        f_max = width
    f_max = min(f_max, width)
    from math import comb, log

    log_rho = np.log(rho) if rho > 0 else -np.inf
    log_1mrho = np.log1p(-rho)
    total = 0.0
    for f in range(f_max + 1):
        if rho == 0 and f > 0:
            break
        log_pmf = log(comb(width, f)) + (f * log_rho if f else 0.0) + (width - f) * log_1mrho
        total += np.exp(log_pmf) * allpairs_success_probability(n, f)
    return float(total)


@dataclass(frozen=True)
class AvailabilityReport:
    """Structural + transient downtime budget for one configuration."""

    n: int
    rho: float
    structural_availability: float
    transient_availability: float
    combined_availability: float
    downtime_minutes_per_year: float
    nines: float


def pair_availability(
    n: int,
    mtbf_hours: float,
    mttr_hours: float,
    repair_latency_s: float,
) -> AvailabilityReport:
    """Full availability budget for a server pair in an N-node DRS cluster.

    Parameters
    ----------
    n, mtbf_hours, mttr_hours:
        Cluster size and per-component lifetime model (each of the 2N+2
        components fails independently).
    repair_latency_s:
        DRS detection + repair time per failure event (e.g.
        ``DrsConfig.detection_bound_s()`` plus the discovery timeout).

    The transient term: the pair's active path uses 3 components (two NICs
    and a hub); failure events arrive on each live component at rate
    1/MTBF, so path-affecting events cost ``3 * repair_latency / MTBF`` of
    outage fraction.
    """
    if repair_latency_s < 0:
        raise ValueError("repair_latency_s must be >= 0")
    rho = component_unavailability(mtbf_hours, mttr_hours)
    structural = iid_success_probability(n, rho)
    events_per_hour_on_path = 3.0 / mtbf_hours
    transient_unavail = min(1.0, events_per_hour_on_path * (repair_latency_s / 3600.0))
    transient = 1.0 - transient_unavail
    combined = structural * transient
    downtime = (1.0 - combined) * MINUTES_PER_YEAR
    nines = float(-np.log10(1.0 - combined)) if combined < 1.0 else float("inf")
    return AvailabilityReport(
        n=n,
        rho=rho,
        structural_availability=structural,
        transient_availability=transient,
        combined_availability=combined,
        downtime_minutes_per_year=downtime,
        nines=nines,
    )

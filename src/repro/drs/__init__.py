"""The Dynamic Routing System (DRS): proactive failover for server clusters.

This package implements the protocol the paper evaluates — the system MCI
WorldCom deployed across 27 voice-mail clusters.  Per the paper, every node
runs a daemon with a two-stage loop:

1. **Monitor** (:mod:`~repro.drs.monitor`): continuously ICMP-echo every
   configured peer on every physical network, paced so probe traffic stays
   inside a configured fraction of the segment bandwidth (the proactive cost
   of Figure 1).  Consecutive probe losses mark a link DOWN.
2. **Repair** (:mod:`~repro.drs.failover`): when the link carrying a peer's
   active route dies, switch to the second direct link if it is healthy;
   otherwise broadcast a route-discovery request so that some other server
   with verified connectivity to both endpoints volunteers as a two-hop
   router.  Repair routes are withdrawn when the direct link heals.

Routing loops are avoided by construction: a repair route is only ever
installed through an intermediate whose *direct* link to the target was
verified by its own monitor, and the intermediate pins a direct host route
for the target leg, so steady-state paths never exceed two hops (packets
also carry a TTL as a backstop).

Entry point: :func:`~repro.drs.daemon.install_drs`.
"""

from repro.drs.config import DrsConfig
from repro.drs.state import LinkKey, LinkState, PeerLink, PeerTable
from repro.drs.messages import (
    DRS_PORT,
    DiscoveryRequest,
    InstallAck,
    RouteInstallRequest,
    RouteOffer,
)
from repro.drs.monitor import LinkMonitor
from repro.drs.failover import FailoverEngine
from repro.drs.daemon import DrsDaemon, DrsDeployment, install_drs
from repro.drs.status import DeploymentHealth, deployment_health, status_report

__all__ = [
    "DrsConfig",
    "LinkState",
    "LinkKey",
    "PeerLink",
    "PeerTable",
    "DRS_PORT",
    "DiscoveryRequest",
    "RouteOffer",
    "RouteInstallRequest",
    "InstallAck",
    "LinkMonitor",
    "FailoverEngine",
    "DrsDaemon",
    "DrsDeployment",
    "install_drs",
    "DeploymentHealth",
    "deployment_health",
    "status_report",
]

"""``drs-sim``: run scenario files from the command line.

Usage::

    drs-sim examples/scenarios/nic_failure_drs.json
    drs-sim --compare examples/scenarios/nic_failure_*.json
"""

from __future__ import annotations

import argparse
import sys

from repro.scenario.run import run_scenario
from repro.scenario.spec import ScenarioError, load_scenario
from repro.viz import render_table


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="drs-sim",
        description="Run declarative DRS cluster scenarios (JSON specs).",
    )
    parser.add_argument("scenarios", nargs="+", help="scenario JSON files")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="render one side-by-side table instead of per-scenario reports",
    )
    args = parser.parse_args(argv)

    reports = []
    for path in args.scenarios:
        try:
            spec = load_scenario(path)
            report = run_scenario(spec)
        except ScenarioError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        if not args.compare:
            print(report.render())
            print()

    if args.compare:
        workload_keys = sorted({k for r in reports for k in r.workload_metrics})
        headers = ["metric"] + [r.spec.name for r in reports]
        rows: list[list] = [
            ["routing repairs"] + [r.routing_repairs for r in reports],
            ["route changes"] + [r.route_changes for r in reports],
            ["mean segment utilization"] + [r.wire_utilization for r in reports],
        ]
        for key in workload_keys:
            rows.append([key] + [r.workload_metrics.get(key, "-") for r in reports])
        print(render_table(headers, rows, title="scenario comparison"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

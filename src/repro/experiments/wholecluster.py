"""EXP-ALLPAIRS — pairwise vs whole-cluster survivability (extension).

Equation 1 guarantees a *pair*; operators usually need the *cluster*.  This
experiment contrasts the two:

1. at fixed f (the paper's conditional regime), all-pairs survivability
   converges to 1 like Equation 1 but visibly below it;
2. under iid component failures (failure count growing with N), the two
   diverge qualitatively — pairwise availability keeps improving with
   cluster size while whole-cluster availability peaks and then decays.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    allpairs_success_curve,
    allpairs_success_probability,
    iid_allpairs_success_probability,
    iid_success_probability,
    simulate_allpairs_success,
    success_curve,
    success_probability,
)
from repro.experiments.base import ExperimentResult


def run(
    f_values: tuple[int, ...] = (2, 4, 6),
    n_max: int = 63,
    rho_values: tuple[float, ...] = (0.005, 0.02),
    iid_n_values: tuple[int, ...] = (4, 8, 16, 32, 48, 63),
    mc_iterations: int = 50_000,
    seed: int = 12,
) -> ExperimentResult:
    """Both regimes plus a Monte Carlo spot check of the new closed form."""
    result = ExperimentResult("wholecluster")

    curves = {}
    for f in f_values:
        ns, pair_ps = success_curve(f, n_max=n_max)
        _, all_ps = allpairs_success_curve(f, n_max=n_max)
        curves[f"pair f={f}"] = (ns, pair_ps)
        curves[f"all f={f}"] = (ns, all_ps)
    result.add_series(
        "conditional",
        curves,
        caption="Fixed-f regime: whole-cluster survivability trails Equation 1",
        x_label="nodes",
        y_label="P[Success]",
    )

    iid_rows = []
    for rho in rho_values:
        for n in iid_n_values:
            iid_rows.append([rho, n, iid_success_probability(n, rho), iid_allpairs_success_probability(n, rho)])
    result.add_table(
        "iid_regime",
        ["rho", "N", "pairwise availability", "whole-cluster availability"],
        iid_rows,
        caption="iid regime: growing the cluster helps any pair, hurts the whole",
    )

    rng = np.random.default_rng(seed)
    check_rows = []
    for n, f in [(8, 3), (16, 4), (32, 5)]:
        exact = allpairs_success_probability(n, f)
        mc = simulate_allpairs_success(n, f, mc_iterations, rng)
        check_rows.append([n, f, exact, mc, abs(exact - mc)])
    result.add_table(
        "mc_check",
        ["N", "f", "closed form", "Monte Carlo", "|diff|"],
        check_rows,
        caption="All-pairs closed form vs simulation",
    )
    worst_gap = max(abs(r[4]) for r in check_rows)
    result.note(f"all-pairs closed form vs MC worst |diff| = {worst_gap:.4f} at {mc_iterations} iterations")
    return result

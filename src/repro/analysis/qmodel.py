"""The unconditional failure-count layer of the paper's model.

The paper argues the *number* of simultaneous failures has geometrically
decaying probability: "the probability of 2 failures in any system will be
q^2, the probability of 3 failures will be q^3, and the probability of f
failures will be q^f … the probability of multiple failures in a system
decreases exponentially."  Combining those weights with the conditional
Equation 1 gives a time-independent unconditional survivability

    P[Success] = sum_f  w(f; q) * P[Success | f]                  (here)

with ``w(f; q) = (1 - q) q^f`` — the normalized geometric form of the
paper's ``q^f`` weights.  Since Equation 1 → 1 as N grows for every fixed
f, and the weights are summable, the unconditional survivability also
converges to 1 — the paper's ``lim_{N→∞} P[S] = 1`` conclusion.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.exact import success_probability


def failure_count_pmf(q: float, f_max: int) -> np.ndarray:
    """Truncated geometric pmf ``w(f) ∝ q^f`` for f = 0..f_max, renormalized.

    ``q`` is the per-level failure likelihood ratio (the paper's q); small q
    means multiple simultaneous failures are rare.
    """
    if not 0 <= q < 1:
        raise ValueError(f"q must be in [0, 1), got {q}")
    if f_max < 0:
        raise ValueError("f_max must be >= 0")
    weights = q ** np.arange(f_max + 1)
    return weights / weights.sum()


def unconditional_success(n: int, q: float, f_max: int | None = None) -> float:
    """Unconditional pair survivability: Equation 1 mixed over ``w(f; q)``.

    ``f_max`` defaults to the physical maximum ``2n + 2`` (every component
    failed).
    """
    if f_max is None:
        f_max = 2 * n + 2
    f_max = min(f_max, 2 * n + 2)
    pmf = failure_count_pmf(q, f_max)
    conditional = np.array([success_probability(n, f) for f in range(f_max + 1)])
    return float(pmf @ conditional)

"""Ctrl-C handling: PlanInterrupted, partial checkpoints, manifest status.

In-process tests inject ``KeyboardInterrupt`` from a job function (what a
SIGINT delivered mid-job looks like to the executor); the CLI test sends a
real SIGINT to a ``drs-experiments`` subprocess and then resumes it.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    Checkpoint,
    Job,
    JobPlan,
    ParallelExecutor,
    PlanInterrupted,
    SerialExecutor,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")


def _draw(params, seed_seq):
    rng = np.random.default_rng(seed_seq)
    return float(rng.random()) + params.get("offset", 0.0)


def _interrupt(params, seed_seq):
    time.sleep(params.get("sleep_s", 0.0))
    raise KeyboardInterrupt


def _plan(jobs, seed=5, experiment="inttest"):
    return JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)


class TestSerialInterrupt:
    def test_settled_jobs_survive_and_checkpoint_is_written(self, tmp_path):
        jobs = [Job(name=f"ok/{i}", fn=_draw, params={"offset": float(i)}) for i in range(3)]
        jobs.append(Job(name="ctrl-c", fn=_interrupt, params={}))
        jobs.append(Job(name="never-ran", fn=_draw, params={}))
        checkpoint = Checkpoint(tmp_path / "inttest.checkpoint.jsonl")

        with pytest.raises(PlanInterrupted) as excinfo:
            SerialExecutor().run(_plan(jobs), checkpoint=checkpoint)

        execution = excinfo.value.execution
        assert execution.interrupted
        assert sorted(execution.values) == ["ok/0", "ok/1", "ok/2"]
        assert "never-ran" not in execution.values
        persisted = (tmp_path / "inttest.checkpoint.jsonl").read_text().splitlines()
        assert len(persisted) == 3  # everything settled before the interrupt

    def test_resume_after_interrupt_completes_the_plan(self, tmp_path):
        path = tmp_path / "inttest.checkpoint.jsonl"

        def jobs(include_interrupt):
            out = [Job(name=f"ok/{i}", fn=_draw, params={"offset": float(i)}) for i in range(4)]
            if include_interrupt:
                out.insert(2, Job(name="ctrl-c", fn=_interrupt, params={}))
            return out

        with pytest.raises(PlanInterrupted):
            SerialExecutor().run(_plan(jobs(True)), checkpoint=Checkpoint(path))
        # rerun without the interrupting job: checkpointed jobs are skipped
        finished = SerialExecutor().run(_plan(jobs(False)), checkpoint=Checkpoint(path))
        assert sorted(finished.resumed) == ["ok/0", "ok/1"]
        reference = SerialExecutor().run(_plan(jobs(False)))
        assert finished.values == reference.values


class TestParallelInterrupt:
    def test_completed_chunks_are_settled_before_raising(self, tmp_path):
        # the interrupting job occupies one worker for a second while the
        # other worker finishes every fast job; the interrupt must not lose
        # those settled results
        jobs = [Job(name="ctrl-c", fn=_interrupt, params={"sleep_s": 1.0})]
        jobs += [Job(name=f"ok/{i}", fn=_draw, params={"offset": float(i)}) for i in range(6)]
        checkpoint = Checkpoint(tmp_path / "inttest.checkpoint.jsonl")

        with pytest.raises(PlanInterrupted) as excinfo:
            ParallelExecutor(workers=2).run(_plan(jobs), checkpoint=checkpoint)

        execution = excinfo.value.execution
        assert execution.interrupted
        assert len(execution.values) == 6, "fast jobs finished before the interrupt"
        persisted = (tmp_path / "inttest.checkpoint.jsonl").read_text().splitlines()
        assert len(persisted) == len(execution.values)


FIGURE2_ARGS = ["figure2", "--quick", "--heartbeat", "0"]


class TestCliSigint:
    def test_sigint_marks_manifest_interrupted_and_resume_completes(self, tmp_path):
        from repro.experiments import runner

        baseline = tmp_path / "baseline"
        assert runner.main([*FIGURE2_ARGS, "--out", str(baseline)]) == 0

        out = tmp_path / "interrupted"
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", *FIGURE2_ARGS,
             "--out", str(out)],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        # interrupt once real progress is checkpointed but long before the end
        checkpoint = out / "figure2.checkpoint.jsonl"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if checkpoint.exists() and len(checkpoint.read_text().splitlines()) >= 5:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("quick figure2 never checkpointed 5 jobs")
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60.0)
        assert proc.returncode == 130, stderr.decode()
        assert b"resume with" in stderr

        manifest = json.loads((out / "figure2.manifest.json").read_text())
        assert manifest["extra"]["status"] == "interrupted"
        assert manifest["extra"]["completed_jobs"] >= 5
        assert not (out / "figure2_montecarlo.csv").exists()  # reduce never ran

        assert runner.main(["--resume", str(out), "--heartbeat", "0"]) == 0
        for artifact in ("figure2_montecarlo.csv", "figure2_equation1.csv"):
            assert (out / artifact).read_bytes() == (baseline / artifact).read_bytes()
        resumed_manifest = json.loads((out / "figure2.manifest.json").read_text())
        assert "status" not in resumed_manifest["extra"]  # clean completion overwrote it

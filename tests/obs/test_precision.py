"""Per-cell precision records, stream reduction, reports, and the CLI verb."""

import json

import pytest

from repro.analysis import wilson_interval
from repro.obs import RunManifest
from repro.obs.cli import main as obs_main
from repro.obs.flightrecorder import FlightRecorder, set_flight_recorder
from repro.obs.precision import (
    STATS_CELL_KIND,
    CellPrecision,
    cells_from_manifest,
    fold_cells,
    precision_report,
    publish_cell_precision,
    render_precision_report,
)


def _cell(n=8, f=3, successes=700, trials=1000, **kw):
    return CellPrecision.from_counts(n, f, successes, trials, **kw)


class TestCellPrecision:
    def test_from_counts_matches_wilson_interval(self):
        cell = _cell(confidence=0.99)
        est = wilson_interval(700, 1000, confidence=0.99)
        assert (cell.point, cell.low, cell.high) == (est.point, est.low, est.high)
        assert cell.half_width == est.half_width
        assert cell.relative_half_width == pytest.approx(est.half_width / 0.7)

    def test_throughput_and_degenerate_relative_width(self):
        cell = _cell(elapsed_s=2.0)
        assert cell.trials_per_second == 500.0
        assert _cell(elapsed_s=0.0).trials_per_second == 0.0
        assert _cell(successes=0).relative_half_width == float("inf")

    def test_efficiency_bounds(self):
        # a plain binomial cell sits near the variance floor
        assert 0.8 < _cell().efficiency <= 1.0
        # degenerate p=0/1 cells read as 0: width is the continuity term
        assert _cell(successes=0).efficiency == 0.0
        assert _cell(successes=1000).efficiency == 0.0

    def test_met_target(self):
        wide = _cell(trials=100, successes=70, target_half_width=1e-4)
        tight = _cell(target_half_width=0.5)
        assert not wide.met_target
        assert tight.met_target
        assert not _cell().met_target  # no target recorded

    def test_to_row_and_event_fields_round_trip(self):
        plain = _cell().to_row()
        assert plain["p"] == 0.7
        assert "target" not in plain and "met" not in plain
        targeted = _cell(target_half_width=0.5).to_row()
        assert targeted["target"] == 0.5 and targeted["met"] is True
        fields = _cell(target_half_width=0.5).event_fields(done=True)
        assert fields["n"] == 8 and fields["f"] == 3 and fields["done"] is True
        assert fields["half_width"] == pytest.approx(_cell().half_width, abs=1e-8)
        json.dumps(fields)  # must be flight-event serializable


class TestPublishAndFold:
    def test_publish_is_a_noop_without_a_recorder(self):
        set_flight_recorder(None)
        publish_cell_precision(_cell())  # must not raise

    def test_publish_emits_stats_cell_and_fold_keeps_latest(self):
        rec = FlightRecorder(None, experiment="sweep")
        set_flight_recorder(rec)
        try:
            publish_cell_precision(_cell(trials=500, successes=350))
            publish_cell_precision(_cell(target_half_width=0.5), done=True)
            publish_cell_precision(_cell(n=9, f=0, successes=1000))
        finally:
            set_flight_recorder(None)
        events = rec.drain()
        assert [e["kind"] for e in events] == [STATS_CELL_KIND] * 3
        cells = fold_cells(events + [{"kind": "heartbeat", "trials": 1}])
        assert set(cells) == {(8, 3), (9, 0)}
        latest = cells[(8, 3)]  # second snapshot supersedes the first
        assert latest["trials"] == 1000 and latest["done"] and latest["met"]
        assert cells[(9, 0)]["target"] is None and not cells[(9, 0)]["done"]


class TestManifestExtraction:
    def test_cells_from_manifest_digs_the_precision_block(self):
        section = {
            "cells": [{"n": 8, "f": 3, "trials": 100, "half_width": 0.05}],
            "target_half_width": 0.01,
            "met_target": 0,
        }
        manifest = {"config": {"iterations": 100, "precision": section}}
        cells, summary = cells_from_manifest(manifest)
        assert cells == section["cells"]
        assert summary == {"target_half_width": 0.01, "met_target": 0}

    def test_cells_from_manifest_without_a_block(self):
        assert cells_from_manifest({"config": {}}) == ([], {})
        assert cells_from_manifest({}) == ([], {})


class TestPrecisionReport:
    def _cells(self):
        # two N rows under the CRN kernel; trials differ per cell
        return [
            {"n": 8, "f": 2, "trials": 1000, "half_width": 0.010, "point": 0.9,
             "target": 0.02, "met": True},
            {"n": 8, "f": 5, "trials": 4000, "half_width": 0.015, "point": 0.5,
             "target": 0.02, "met": True},
            {"n": 12, "f": 2, "trials": 2000, "half_width": 0.030, "point": 0.8,
             "target": 0.02, "met": False},
        ]

    def test_crn_trials_accounting(self):
        report = precision_report(self._cells())
        # per-row maxima: n=8 -> 4000, n=12 -> 2000; fixed run: 2 rows x 4000
        assert report["rows"] == 2
        assert report["total_trials"] == 6000
        assert report["fixed_equivalent_trials"] == 8000
        assert report["trials_saved"] == 2000
        assert report["trials_saved_fraction"] == pytest.approx(0.25)

    def test_targets_worst_cells_and_per_f(self):
        report = precision_report(self._cells(), top=2)
        assert report["cells"] == 3 and report["met_target"] == 2
        assert report["target_half_width"] == 0.02
        assert report["worst_half_width"] == 0.030
        assert [(c["n"], c["f"]) for c in report["worst_cells"]] == [(12, 2), (8, 5)]
        per_f = {s["f"]: s for s in report["per_f"]}
        assert per_f[2]["cells"] == 2 and per_f[2]["met"] == 1
        assert per_f[5]["worst_half_width"] == 0.015

    def test_target_override_rejudges_cells(self):
        report = precision_report(self._cells(), target=0.012)
        assert report["met_target"] == 1  # only the 0.010 cell survives

    def test_empty_and_render(self):
        empty = precision_report([])
        assert empty["cells"] == 0 and empty["trials_saved_fraction"] == 0.0
        text = render_precision_report(precision_report(self._cells()), source="run")
        assert "sweep quality: run" in text
        assert "worst cells" in text and "failure count" in text
        assert "2/3" in text  # at-target summary row


class TestPrecisionVerb:
    def _write_flight(self, tmp_path):
        path = tmp_path / "run.flight.jsonl"
        rec = FlightRecorder(path, experiment="sweep")
        set_flight_recorder(rec)
        try:
            publish_cell_precision(_cell(target_half_width=0.5), done=True)
            publish_cell_precision(_cell(n=9, f=1, trials=2000, successes=1500), done=True)
        finally:
            set_flight_recorder(None)
            rec.close()
        return path

    def test_report_from_flight_stream(self, tmp_path, capsys):
        path = self._write_flight(tmp_path)
        assert obs_main(["precision", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep quality: run.flight.jsonl" in out and "worst cells" in out

    def test_json_report_from_manifest(self, tmp_path, capsys):
        section = precision_report(
            [{"n": 8, "f": 3, "trials": 100, "half_width": 0.05, "point": 0.7}]
        )
        section.pop("worst_cells")
        section["cells"] = [
            {"n": 8, "f": 3, "trials": 100, "half_width": 0.05, "point": 0.7}
        ]
        manifest = RunManifest.build(
            "figure2", "experiment", seed=1,
            config={"precision": section}, wall_seconds=0.1, event_count=2,
        )
        path = tmp_path / "figure2.manifest.json"
        manifest.write(path)
        assert obs_main(["precision", str(path), "--json", "--target", "0.01"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["source"] == str(path)
        assert report["cells"] == 1 and report["met_target"] == 0

    def test_errors_on_bad_source(self, tmp_path, capsys):
        bad = tmp_path / "run.metrics.jsonl"
        bad.write_text("")
        assert obs_main(["precision", str(bad)]) == 1
        assert "expected a *.flight.jsonl" in capsys.readouterr().err
        empty = tmp_path / "empty.flight.jsonl"
        empty.write_text('{"kind": "run.begin", "t": 0.0, "pid": 1}\n')
        assert obs_main(["precision", str(empty)]) == 1
        assert "no per-cell precision data" in capsys.readouterr().err

"""Observability layer: metrics registry, run artifacts, and profiling.

``repro.obs`` is the measurement substrate the rest of the stack publishes
into:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with named counters,
  gauges, and fixed-bucket histograms; Prometheus-text and JSONL export;
  a swappable *current* registry for per-run scoping.
* :mod:`repro.obs.artifacts` — :class:`RunManifest` (seed, config hash,
  wall time, event count, package version) plus metrics-snapshot and
  trace-JSONL writers, emitted next to every experiment/scenario result.
* :mod:`repro.obs.profiler` — simulator event-loop accounting and Monte
  Carlo throughput publication.
* :mod:`repro.obs.cli` — the ``repro obs`` pretty-printer.
* :mod:`repro.obs.compat` — deprecation shims for the legacy primitives.
"""

from repro.obs.artifacts import (
    RunManifest,
    load_manifest,
    spec_hash,
    write_metrics_files,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    ensure_core_metrics,
    resolve_registry,
    use_registry,
)
from repro.obs.profiler import (
    install_profiling,
    publish_mc_throughput,
    publish_profile,
    uninstall_profiling,
)

__all__ = [
    "MetricsRegistry",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "current_registry",
    "resolve_registry",
    "use_registry",
    "ensure_core_metrics",
    "RunManifest",
    "load_manifest",
    "spec_hash",
    "write_metrics_files",
    "write_trace_jsonl",
    "install_profiling",
    "uninstall_profiling",
    "publish_profile",
    "publish_mc_throughput",
]

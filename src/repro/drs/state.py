"""Per-daemon link-state tracking.

Each DRS daemon keeps, for every (peer, network) pair it monitors, the state
the paper describes ("each demon keeps track of which hosts to monitor and
the state that they are in — up, down"), extended with a SUSPECT state while
consecutive probe losses accumulate toward the DOWN threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.netsim.addresses import NetworkId, NodeId

LinkKey = tuple[NodeId, NetworkId]


class LinkState(enum.Enum):
    """Monitor's belief about one directed link (self -> peer on network)."""

    UNKNOWN = "unknown"   #: never successfully probed yet
    UP = "up"
    SUSPECT = "suspect"   #: some probes lost, threshold not yet reached
    DOWN = "down"


@dataclass
class PeerLink:
    """Mutable monitor record for one (peer, network) link."""

    peer: NodeId
    network: NetworkId
    state: LinkState = LinkState.UNKNOWN
    consecutive_failures: int = 0
    last_ok_at: float | None = None
    last_probe_at: float | None = None
    down_since: float | None = None

    @property
    def key(self) -> LinkKey:
        """The (peer, network) dictionary key for this record."""
        return (self.peer, self.network)


TransitionListener = Callable[[PeerLink, LinkState, LinkState], None]


class PeerTable:
    """All link records for one daemon, with transition notification."""

    def __init__(self, owner: NodeId, peers: list[NodeId], networks: list[NetworkId]) -> None:
        self.owner = owner
        self._links: dict[LinkKey, PeerLink] = {}
        for peer in peers:
            if peer == owner:
                continue
            for net in networks:
                self._links[(peer, net)] = PeerLink(peer=peer, network=net)
        self._listeners: list[TransitionListener] = []

    # ------------------------------------------------------------------ read
    def link(self, peer: NodeId, network: NetworkId) -> PeerLink:
        """The record for one link (KeyError if unmonitored)."""
        return self._links[(peer, network)]

    def links(self) -> list[PeerLink]:
        """All records in deterministic (peer, network) order."""
        return [self._links[k] for k in sorted(self._links)]

    def links_to(self, peer: NodeId) -> list[PeerLink]:
        """Both networks' records for one peer."""
        return [l for l in self.links() if l.peer == peer]

    def peers(self) -> list[NodeId]:
        """All monitored peers, sorted."""
        return sorted({peer for peer, _ in self._links})

    def is_up(self, peer: NodeId, network: NetworkId) -> bool:
        """True iff the link is currently believed UP."""
        return self._links[(peer, network)].state is LinkState.UP

    def up_networks_to(self, peer: NodeId) -> list[NetworkId]:
        """Networks on which this daemon believes it can reach ``peer``."""
        return [l.network for l in self.links_to(peer) if l.state is LinkState.UP]

    def peer_reachable_direct(self, peer: NodeId) -> bool:
        """True iff at least one direct link to ``peer`` is UP."""
        return bool(self.up_networks_to(peer))

    def down_links(self) -> list[PeerLink]:
        """All links currently declared DOWN."""
        return [l for l in self.links() if l.state is LinkState.DOWN]

    # ----------------------------------------------------------- transitions
    def on_transition(self, listener: TransitionListener) -> None:
        """Register ``listener(link, old_state, new_state)``."""
        self._listeners.append(listener)

    def record_success(self, peer: NodeId, network: NetworkId, now: float) -> None:
        """A probe on this link succeeded."""
        link = self._links[(peer, network)]
        link.consecutive_failures = 0
        link.last_ok_at = now
        link.down_since = None
        self._transition(link, LinkState.UP)

    def record_failure(self, peer: NodeId, network: NetworkId, now: float, threshold: int) -> None:
        """A probe on this link failed; declare DOWN at ``threshold`` misses."""
        link = self._links[(peer, network)]
        link.consecutive_failures += 1
        if link.consecutive_failures >= threshold:
            if link.down_since is None:
                link.down_since = now
            self._transition(link, LinkState.DOWN)
        elif link.state in (LinkState.UP, LinkState.UNKNOWN):
            self._transition(link, LinkState.SUSPECT)

    def _transition(self, link: PeerLink, new: LinkState) -> None:
        old = link.state
        if old is new:
            return
        link.state = new
        for listener in self._listeners:
            listener(link, old, new)

"""Messaging-layer recovery: reconnect after transport death."""

from repro.cluster import install_messaging
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.protocols.tcp import TcpState
from repro.simkit import Simulator


def test_endpoint_reconnects_after_connection_death():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    stacks = install_stacks(cluster)
    comm = install_messaging(sim, stacks)
    got = []
    comm.endpoint(1).on_receive(lambda src, tag, p, s: got.append(tag))

    comm.endpoint(0).send(1, "before", None, 32)
    sim.run(until=1.0)
    assert got == ["before"]

    # kill the transport: total outage long enough to exhaust retries
    first_conn = comm.endpoint(0)._out[1]
    cluster.faults.fail("hub0")
    cluster.faults.fail("hub1")
    comm.endpoint(0).send(1, "lost", None, 32)
    sim.run(until=sim.now + 600.0)
    assert first_conn.state is TcpState.FAILED

    # network heals; the endpoint must open a fresh connection transparently
    cluster.faults.repair("hub0")
    cluster.faults.repair("hub1")
    comm.endpoint(0).send(1, "after", None, 32)
    sim.run(until=sim.now + 30.0)
    assert "after" in got
    assert comm.endpoint(0)._out[1] is not first_conn


def test_latency_of_survives_reconnect():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 2)
    stacks = install_stacks(cluster)
    comm = install_messaging(sim, stacks)
    msg1 = comm.endpoint(0).send(1, "a", None, 16)
    sim.run(until=1.0)
    old_latency = comm.endpoint(0).latency_of(1, msg1)
    assert old_latency is not None
    # force reconnect
    comm.endpoint(0)._out[1].abort()
    msg2 = comm.endpoint(0).send(1, "b", None, 16)
    sim.run(until=2.0)
    assert comm.endpoint(0).latency_of(1, msg2) is not None

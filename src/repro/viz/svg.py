"""Standalone SVG line charts (no plotting dependencies).

The offline environment has no matplotlib; these charts are hand-built SVG
strings good enough for the HTML experiment reports: linear/log axes with
ticks, one polyline per series, and a legend.  Colors follow a fixed
color-blind-safe cycle.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from xml.sax.saxutils import escape

#: Okabe-Ito color-blind-safe cycle.
COLORS = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
    "#999999", "#882255",
)


def _transform(values: Sequence[float], log: bool) -> list[float]:
    out = []
    for v in values:
        v = float(v)
        if log:
            if v <= 0:
                raise ValueError(f"log axis requires positive values, got {v}")
            v = math.log10(v)
        out.append(v)
    return out


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    if hi == lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def _fmt(value: float, log: bool) -> str:
    raw = 10**value if log else value
    return f"{raw:.3g}"


def svg_line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 640,
    height: int = 360,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    x_log: bool = False,
    y_log: bool = False,
) -> str:
    """Render named (x, y) series as an SVG document string."""
    if not series:
        raise ValueError("no series to plot")
    margin_left, margin_right, margin_top, margin_bottom = 64, 150, 36, 48
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    if plot_w <= 10 or plot_h <= 10:
        raise ValueError("chart too small to render")

    points = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys) or len(xs) == 0:
            raise ValueError(f"series {name!r}: empty or mismatched x/y")
        points[name] = (_transform(xs, x_log), _transform(ys, y_log))

    all_x = [x for xs, _ in points.values() for x in xs]
    all_y = [y for _, ys in points.values() for y in ys]
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def px(x: float) -> float:
        return margin_left + (x - x_min) / x_span * plot_w

    def py(y: float) -> float:
        return margin_top + plot_h - (y - y_min) / y_span * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" font-size="14">{escape(title)}</text>'
        )
    # axes frame
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333" stroke-width="1"/>'
    )
    # ticks + gridlines
    for tx in _ticks(x_min, x_max):
        x = px(tx)
        parts.append(f'<line x1="{x:.1f}" y1="{margin_top}" x2="{x:.1f}" y2="{margin_top + plot_h}" stroke="#eee"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 16}" text-anchor="middle">{_fmt(tx, x_log)}</text>'
        )
    for ty in _ticks(y_min, y_max):
        y = py(ty)
        parts.append(f'<line x1="{margin_left}" y1="{y:.1f}" x2="{margin_left + plot_w}" y2="{y:.1f}" stroke="#eee"/>')
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end">{_fmt(ty, y_log)}</text>'
        )
    # axis labels
    if x_label:
        label = x_label + (" (log)" if x_log else "")
        parts.append(
            f'<text x="{margin_left + plot_w / 2}" y="{height - 10}" text-anchor="middle">{escape(label)}</text>'
        )
    if y_label:
        label = y_label + (" (log)" if y_log else "")
        parts.append(
            f'<text x="16" y="{margin_top + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {margin_top + plot_h / 2})">{escape(label)}</text>'
        )
    # series
    for index, (name, (xs, ys)) in enumerate(points.items()):
        color = COLORS[index % len(COLORS)]
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys))
        parts.append(f'<polyline points="{coords}" fill="none" stroke="{color}" stroke-width="1.5"/>')
        legend_y = margin_top + 14 * index
        parts.append(
            f'<line x1="{width - margin_right + 10}" y1="{legend_y + 6}" '
            f'x2="{width - margin_right + 30}" y2="{legend_y + 6}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{width - margin_right + 34}" y="{legend_y + 10}">{escape(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)

"""Oracle test: the vectorized DRS predicate vs exhaustive pure-Python rules.

``pair_connected_vec`` is the Monte Carlo hot path — one NumPy expression
whose correctness everything downstream (Figures 2/3, the availability
tables) inherits.  This compares it, bit for bit, against the pure-Python
transcription of the DRS reachability rules in
:mod:`repro.analysis.exhaustive` over *every* possible failure set for
small clusters: all ``C(2n+2, f)`` subsets, for n in {2, 3} and every f.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.analysis.exhaustive import pair_connected
from repro.analysis.montecarlo import pair_connected_vec


def _all_failure_sets(n: int, f: int) -> list[tuple[int, ...]]:
    return list(combinations(range(2 * n + 2), f))


def _as_matrix(failure_sets: list[tuple[int, ...]], n: int) -> np.ndarray:
    failed = np.zeros((len(failure_sets), 2 * n + 2), dtype=bool)
    for row, subset in enumerate(failure_sets):
        failed[row, list(subset)] = True
    return failed


@pytest.mark.parametrize("n", [2, 3])
@pytest.mark.parametrize("two_hop", [True, False])
def test_vectorized_matches_oracle_exhaustively(n, two_hop):
    width = 2 * n + 2
    for f in range(width + 1):
        subsets = _all_failure_sets(n, f)
        got = pair_connected_vec(_as_matrix(subsets, n), two_hop=two_hop)
        expected = np.array(
            [pair_connected(frozenset(s), n, two_hop=two_hop) for s in subsets]
        )
        mismatches = np.flatnonzero(got != expected)
        assert mismatches.size == 0, (
            f"n={n} f={f} two_hop={two_hop}: vectorized predicate disagrees with the "
            f"oracle on {mismatches.size}/{len(subsets)} failure sets, "
            f"first at {subsets[mismatches[0]]}"
        )


def test_exhaustive_mean_matches_closed_form():
    # anchor the oracle itself against Equation 1 while we're here
    from repro.analysis.exact import success_probability

    for n in (2, 3):
        for f in range(2 * n + 3):
            subsets = _all_failure_sets(n, f)
            mean = np.mean([pair_connected(frozenset(s), n) for s in subsets])
            assert mean == pytest.approx(success_probability(n, f), abs=1e-12)

"""Tests for the frame-capture diagnostic tool."""

import pytest

from repro.drs import install_drs
from repro.netsim import FrameCapture, build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST


def _rig(n=3):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    return sim, cluster, stacks


def test_capture_records_udp_and_icmp():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes)
    stacks[1].udp.bind(5, lambda d, s, n: None)
    stacks[0].udp.send(1, 5, data_bytes=10)
    stacks[0].icmp.ping_direct(1, 1, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    assert len(capture) >= 3  # udp + echo request + echo reply
    summaries = [cf.summary for cf in capture.frames]
    assert any("udp" in s for s in summaries)
    assert any("icmp/EchoRequest" in s for s in summaries)
    assert any("icmp/EchoReply" in s for s in summaries)


def test_filter_by_network_and_protocol():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes)
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.1, callback=lambda r: None)
    stacks[0].icmp.ping_direct(1, 2, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    net0 = capture.filter(network=0)
    net1 = capture.filter(network=1)
    assert len(net0) == 2 and len(net1) == 2  # request+reply on each net
    icmp_only = capture.filter(protocol="icmp")
    assert len(icmp_only) == 4


def test_filter_by_node_and_since():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes)
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    t_mid = sim.now
    stacks[0].icmp.ping_direct(0, 2, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    assert len(capture.filter(node=2)) == 2
    assert len(capture.filter(since=t_mid)) == 2


def test_render_timeline():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes)
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    text = capture.render()
    assert "net0" in text and "icmp/EchoRequest" in text and "84B" in text


def test_render_limit_and_overflow():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes, max_frames=5)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    assert len(capture) == 5 and capture.overflowed
    assert "overflowed" in capture.render()
    with pytest.raises(ValueError):
        FrameCapture(cluster.backplanes, max_frames=0)


def test_detach_stops_capturing():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes)
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    count = len(capture)
    capture.detach()
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.1, callback=lambda r: None)
    sim.run()
    assert len(capture) == count


def test_traffic_matrix():
    sim, cluster, stacks = _rig()
    capture = FrameCapture(cluster.backplanes)
    stacks[1].udp.bind(5, lambda d, s, n: None)
    for _ in range(3):
        stacks[0].udp.send(1, 5, data_bytes=10)
    sim.run()
    matrix = capture.traffic_matrix()
    assert matrix[("net0.0", "net0.1")] == 3 * 84


def test_capture_still_delivers_frames():
    sim, cluster, stacks = _rig()
    FrameCapture(cluster.backplanes)
    got = []
    stacks[1].udp.bind(5, lambda d, s, n: got.append(1))
    stacks[0].udp.send(1, 5, data_bytes=10)
    sim.run()
    assert got == [1]

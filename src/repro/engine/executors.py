"""Pluggable executors: run a :class:`~repro.engine.jobs.JobPlan`'s jobs.

Two backends ship:

* :class:`SerialExecutor` — runs every job in-process, in plan order.  The
  default, and the reference behavior: jobs publish metrics and heartbeats
  directly into the caller's current registry/reporter.
* :class:`ParallelExecutor` — fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker chunk runs
  under a private :class:`~repro.obs.metrics.MetricsRegistry` and a silent
  heartbeat collector; the parent merges registries back via
  :meth:`MetricsRegistry.merge` and absorbs heartbeat summaries, so the
  run's artifacts aggregate the whole fleet.

Because every job's random stream is spawned from ``(root seed, experiment,
job name)`` (see :mod:`repro.engine.jobs`), the two backends produce
identical values for identical plans — worker count and scheduling order
can only change wall time, never results.

Fault tolerance
---------------

Both backends take an optional :class:`~repro.engine.retry.RetryPolicy`
(``policy=``) and run each job through
:func:`repro.engine.retry.execute_job`: bounded retries with deterministic
backoff jitter, per-attempt wall-clock timeouts, and quarantine of jobs
that exhaust the budget (the run completes with partial values instead of
dying).  Without a policy the legacy fail-fast semantics apply — the first
failure raises :class:`~repro.engine.retry.JobError`.

``run(plan, checkpoint=...)`` additionally streams completed values into a
:class:`~repro.engine.checkpoint.Checkpoint` (and skips jobs it already
holds), which is what makes ``drs-experiments --resume`` crash-safe.  The
parallel backend also survives ``BrokenProcessPool``: it respawns the pool
up to ``max_pool_respawns`` times and requeues only the jobs that have not
settled yet.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.engine.checkpoint import Checkpoint
from repro.engine.jobs import Job, JobPlan
from repro.engine.retry import FAIL_FAST, JobError, JobOutcome, RetryPolicy, execute_job
from repro.obs.metrics import MetricsRegistry, current_registry, ensure_core_metrics, use_registry
from repro.obs.progress import ProgressReporter, heartbeat, set_heartbeat

__all__ = [
    "JobError",
    "PlanExecution",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
]


@dataclass
class PlanExecution:
    """What an executor hands back: values by job name plus provenance."""

    values: dict[str, Any]
    backend: str
    workers: int
    job_seeds: dict[str, int] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)
    timed_out: list[str] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    pool_respawns: int = 0

    @property
    def retries(self) -> int:
        """Total attempts beyond the first across all jobs run this time."""
        return sum(a - 1 for a in self.attempts.values())


def _resume_from_checkpoint(
    plan: JobPlan, checkpoint: Checkpoint | None
) -> tuple[dict[str, Any], list[str]]:
    """Values and names of jobs a checkpoint already holds for this plan."""
    if checkpoint is None:
        return {}, []
    records = checkpoint.load(plan)
    return {r.job: r.value for r in records}, [r.job for r in records]


class SerialExecutor:
    """Run jobs one after another in the calling process (the default)."""

    name = "serial"
    workers = 1

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy

    def run(self, plan: JobPlan, checkpoint: Checkpoint | None = None) -> PlanExecution:
        """Execute every job in plan order; deterministic for a given plan."""
        policy = self.policy if self.policy is not None else FAIL_FAST
        values, resumed = _resume_from_checkpoint(plan, checkpoint)
        attempts: dict[str, int] = {}
        quarantined: list[str] = []
        timed_out: list[str] = []
        for job in plan.jobs:
            if job.name in values:
                continue
            outcome = execute_job(plan.experiment, plan.seed, job, plan.job_seedseq(job), policy)
            attempts[job.name] = outcome.attempts
            if outcome.ok:
                values[job.name] = outcome.value
                if checkpoint is not None:
                    checkpoint.record(plan, outcome)
            else:
                quarantined.append(job.name)
                if outcome.timed_out:
                    timed_out.append(job.name)
            hb = heartbeat()
            if hb is not None:
                hb.add(0, jobs=1)
        return PlanExecution(
            values=values,
            backend=self.name,
            workers=1,
            job_seeds=plan.job_seeds(),
            attempts=attempts,
            quarantined=quarantined,
            timed_out=timed_out,
            resumed=resumed,
        )


def _run_chunk(
    experiment: str, seed: int, jobs: list[Job], policy: RetryPolicy
) -> tuple[list[JobOutcome], MetricsRegistry, dict]:
    """Worker entry point: run a chunk of jobs under private observability.

    Returns the chunk's per-job outcomes, its metrics registry (merged by
    the parent), and the silent heartbeat collector's summary.  Module-level
    so process pools can pickle it regardless of start method.  Retries and
    timeouts happen here, inside the worker — only quarantined outcomes
    (or, under a fail-fast policy, a :class:`JobError`) reach the parent.
    """
    from repro.engine.jobs import JobPlan  # re-import friendly under spawn
    from repro.obs.profiler import install_profiling

    plan = JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)
    install_profiling()
    registry = ensure_core_metrics(MetricsRegistry())
    # Never emits (interval is effectively infinite): pure collector whose
    # summary the parent absorbs into the run's real reporter.
    collector = ProgressReporter(experiment, interval_s=1e12)
    set_heartbeat(collector)
    try:
        with use_registry(registry):
            outcomes = [
                execute_job(experiment, seed, job, plan.job_seedseq(job), policy) for job in jobs
            ]
    finally:
        set_heartbeat(None)
    return outcomes, registry, collector.summary()


class ParallelExecutor:
    """Fan jobs out over a process pool; results identical to serial.

    ``workers`` defaults to the machine's CPU count.  Jobs are grouped into
    chunks (several jobs per round trip) to amortize pickling and registry
    transfer; chunking affects only scheduling, never values.

    If the pool breaks (a worker segfaults, is OOM-killed, …) the executor
    replaces it — up to ``max_pool_respawns`` times per plan — and requeues
    exactly the jobs whose outcomes had not been received.  A job that
    *keeps* breaking its worker therefore exhausts the respawn budget and
    surfaces as a :class:`JobError` attributed to ``"<pool>"`` (the broken
    pipe cannot say which job killed it).
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int | None = None,
        chunks_per_worker: int = 4,
        policy: RetryPolicy | None = None,
        max_pool_respawns: int = 3,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        if max_pool_respawns < 0:
            raise ValueError(f"max_pool_respawns must be >= 0, got {max_pool_respawns}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunks_per_worker = chunks_per_worker
        self.policy = policy
        self.max_pool_respawns = max_pool_respawns

    def _chunk(self, jobs: list[Job]) -> list[list[Job]]:
        if not jobs:
            return []
        target = self.workers * self.chunks_per_worker
        size = max(1, -(-len(jobs) // target))  # ceil division
        return [jobs[i : i + size] for i in range(0, len(jobs), size)]

    def run(self, plan: JobPlan, checkpoint: Checkpoint | None = None) -> PlanExecution:
        """Execute the plan on the pool, merging worker observability back."""
        policy = self.policy if self.policy is not None else FAIL_FAST
        registry = current_registry()
        reporter = heartbeat()
        values, resumed = _resume_from_checkpoint(plan, checkpoint)
        attempts: dict[str, int] = {}
        quarantined: list[str] = []
        timed_out: list[str] = []
        settled: set[str] = set(values)

        def absorb(chunk: list[Job], result: tuple) -> None:
            chunk_outcomes, worker_registry, hb_summary = result
            for outcome in chunk_outcomes:
                settled.add(outcome.name)
                attempts[outcome.name] = outcome.attempts
                if outcome.ok:
                    values[outcome.name] = outcome.value
                    if checkpoint is not None:
                        checkpoint.record(plan, outcome)
                else:
                    quarantined.append(outcome.name)
                    if outcome.timed_out:
                        timed_out.append(outcome.name)
            registry.merge(worker_registry)
            if reporter is not None:
                reporter.absorb(hb_summary)
                reporter.add(0, jobs=len(chunk))

        chunks = self._chunk([job for job in plan.jobs if job.name not in settled])
        respawns = 0
        while chunks:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    pending = {
                        pool.submit(_run_chunk, plan.experiment, plan.seed, chunk, policy): chunk
                        for chunk in chunks
                    }
                    while pending:
                        done, _ = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            chunk = pending.pop(future)
                            absorb(chunk, future.result())
                chunks = []
            except BrokenProcessPool as exc:
                if respawns >= self.max_pool_respawns:
                    raise JobError(
                        plan.experiment,
                        "<pool>",
                        f"process pool broke {respawns + 1} times; giving up: {exc!r}",
                    ) from exc
                respawns += 1
                registry.counter("engine_pool_respawns_total").add(1)
                # Requeue (and rebalance) everything whose outcome never
                # arrived; settled jobs are safe — their results, metrics,
                # and checkpoint records were absorbed before the break.
                chunks = self._chunk([job for job in plan.jobs if job.name not in settled])
        _recompute_rate_gauges(registry)
        return PlanExecution(
            values=values,
            backend=self.name,
            workers=self.workers,
            job_seeds=plan.job_seeds(),
            attempts=attempts,
            quarantined=quarantined,
            timed_out=timed_out,
            resumed=resumed,
            pool_respawns=respawns,
        )


def _recompute_rate_gauges(registry: MetricsRegistry) -> None:
    """Derive throughput gauges from merged totals.

    Summing per-worker rate gauges over-counts (each measures a different
    wall interval); the ratio of the merged counters is the right aggregate.
    """
    for gauge_name, total_name, wall_name in (
        ("sim_events_per_second", "sim_events_total", "sim_run_seconds_total"),
        ("mc_iterations_per_second", "mc_iterations_total", "mc_wall_seconds_total"),
    ):
        total, wall = registry.get(total_name), registry.get(wall_name)
        if total is not None and wall is not None and wall.value > 0:
            registry.gauge(gauge_name).set(total.value / wall.value)


def make_executor(
    jobs: int | None, policy: RetryPolicy | None = None
) -> SerialExecutor | ParallelExecutor:
    """CLI helper: ``--jobs N`` to an executor (``0``/``None`` = all cores).

    ``--jobs 1`` (and single-core machines asking for "all cores") stays
    serial: a one-worker pool costs process round trips and buys nothing.
    ``policy`` (if any) is threaded through to the chosen backend.
    """
    if jobs is None or jobs == 1:
        return SerialExecutor(policy=policy)
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    workers = jobs if jobs > 0 else (os.cpu_count() or 1)
    if workers == 1:
        return SerialExecutor(policy=policy)
    return ParallelExecutor(workers=workers, policy=policy)

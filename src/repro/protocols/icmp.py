"""ICMP echo: the probe primitive the DRS monitor is built on."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.netsim.addresses import NetworkId, NodeId
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.spans import span_log
from repro.protocols.ip import NetworkLayer
from repro.protocols.packet import ICMP_HEADER_BYTES, Packet
from repro.simkit import Counter, Simulator, TraceRecorder

_echo_ids = itertools.count(1)


@dataclass(slots=True)
class EchoRequest:
    """ICMP echo request (type 8).

    ``direct`` marks a link probe: the responder must answer on the physical
    network the request arrived on rather than through its routing table, so
    the transaction tests exactly one link in both directions.
    """

    ident: int
    seq: int
    data_bytes: int = 0
    direct: bool = False

    @property
    def size_bytes(self) -> int:
        """Header plus optional payload padding."""
        return ICMP_HEADER_BYTES + self.data_bytes


@dataclass(slots=True)
class EchoReply:
    """ICMP echo reply (type 0); mirrors the request's ident/seq/data."""

    ident: int
    seq: int
    data_bytes: int = 0

    @property
    def size_bytes(self) -> int:
        """Header plus mirrored payload padding."""
        return ICMP_HEADER_BYTES + self.data_bytes


class PingStatus(enum.Enum):
    """Outcome of one echo transaction."""

    REPLY = "reply"
    TIMEOUT = "timeout"
    SEND_FAILED = "send-failed"


@dataclass(frozen=True, slots=True)
class PingResult:
    """What a completed ping reports to its callback."""

    status: PingStatus
    dst_node: NodeId
    network: NetworkId | None
    rtt_s: float | None


class IcmpService:
    """Echo responder plus an async ping client with timeouts.

    Two send paths exist on purpose:

    * :meth:`ping_direct` — one physical network, no routing; this is the
      DRS link check (host A, NIC j → host B, NIC j).
    * :meth:`ping` — routing-table path; used by experiments to measure
      end-to-end reachability exactly as an application would see it.
    """

    PROTOCOL = "icmp"

    def __init__(
        self,
        sim: Simulator,
        net: NetworkLayer,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.net = net
        # Routed pings (path checks, reachability probes) get causal spans;
        # direct link probes stay span-free — the monitor records the losses
        # that matter and the per-probe hot path must stay cheap.
        self._spans = span_log(trace) if trace is not None else None
        # (ident, seq) -> (timeout event, callback, sent_at, network or None,
        #                  dst_node, span or None)
        self._pending: dict[tuple[int, int], tuple] = {}
        self.requests_answered = Counter(f"icmp{net.node.node_id}.answered")
        self.replies_matched = Counter(f"icmp{net.node.node_id}.matched")
        self.timeouts = Counter(f"icmp{net.node.node_id}.timeouts")
        self._m_timeouts = resolve_registry(metrics).counter("icmp_timeouts_total")
        net.register_protocol(self.PROTOCOL, self._on_packet)

    # ------------------------------------------------------------------ client
    def ping_direct(
        self,
        network: NetworkId,
        dst_node: NodeId,
        timeout_s: float,
        callback: Callable[[PingResult], None],
        data_bytes: int = 0,
    ) -> None:
        """Echo ``dst_node`` over one specific network; no routing involved."""
        self._ping(dst_node, timeout_s, callback, data_bytes, network=network)

    def ping(
        self,
        dst_node: NodeId,
        timeout_s: float,
        callback: Callable[[PingResult], None],
        data_bytes: int = 0,
    ) -> None:
        """Echo ``dst_node`` along whatever path the routing table provides."""
        self._ping(dst_node, timeout_s, callback, data_bytes, network=None)

    def _ping(self, dst_node, timeout_s, callback, data_bytes, network):
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        ident = next(_echo_ids)
        seq = 1
        request = EchoRequest(ident=ident, seq=seq, data_bytes=data_bytes, direct=network is not None)
        span = None
        if network is None and self._spans is not None and self._spans.wants():
            span = self._spans.begin(
                f"ping node{self.net.node.node_id}->peer{dst_node}",
                "probe",
                node=self.net.node.node_id,
                peer=dst_node,
            )
        if network is None:
            sent = self.net.send(dst_node, self.PROTOCOL, request)
        else:
            sent = self.net.send_direct(network, dst_node, self.PROTOCOL, request)
        if not sent:
            # The local NIC refused (or no route): report immediately but
            # asynchronously, so callers never reenter from inside ping().
            if span is not None:
                self._spans.end(span, outcome="send-failed")
            result = PingResult(PingStatus.SEND_FAILED, dst_node, network, None)
            self.sim.schedule(0.0, lambda: callback(result))
            return
        key = (ident, seq)
        timeout_ev = self.sim.schedule(timeout_s, lambda: self._on_timeout(key))
        self._pending[key] = (timeout_ev, callback, self.sim.now, network, dst_node, span)

    def _on_timeout(self, key: tuple[int, int]) -> None:
        entry = self._pending.pop(key, None)
        if entry is None:
            return
        _, callback, _, network, dst_node, span = entry
        self.timeouts.add()
        self._m_timeouts.add()
        if span is not None:
            self._spans.end(span, outcome="timeout")
        callback(PingResult(PingStatus.TIMEOUT, dst_node, network, None))

    # --------------------------------------------------------------- responder
    def _on_packet(self, packet: Packet, arrived_on: NetworkId) -> None:
        msg = packet.payload
        if isinstance(msg, EchoRequest):
            reply = EchoReply(ident=msg.ident, seq=msg.seq, data_bytes=msg.data_bytes)
            if msg.direct:
                # Link probe: answer on the network it arrived on so the
                # transaction tests that physical link in both directions.
                self.net.send_direct(arrived_on, packet.src_node, self.PROTOCOL, reply)
            else:
                # Routed ping: answer through the routing table, like real ICMP.
                self.net.send(packet.src_node, self.PROTOCOL, reply)
            self.requests_answered.add()
        elif isinstance(msg, EchoReply):
            entry = self._pending.pop((msg.ident, msg.seq), None)
            if entry is None:
                return  # late reply after timeout: ignored, like real ping
            timeout_ev, callback, sent_at, network, dst_node, span = entry
            self.sim.cancel(timeout_ev)
            self.replies_matched.add()
            if span is not None:
                self._spans.end(span, outcome="reply", rtt_s=self.sim.now - sent_at)
            callback(PingResult(PingStatus.REPLY, dst_node, network, self.sim.now - sent_at))

"""Non-uniform failure weights: hubs and NICs do not fail equally often.

The paper's model makes all 2N+2 components equiprobable.  The field data
its motivation cites says otherwise (hubs are shared infrastructure with
their own power/backplane failure modes; NICs dominate by count).  This
module re-evaluates survivability when the f failed components are drawn
*without replacement with probability proportional to per-kind weights* —
a weighted version of the conditional model, estimated by Monte Carlo with
the Gumbel top-k trick (fully vectorized, no Python-level loops).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.montecarlo import pair_connected_vec

#: Per-failure-event weights implied by the failure-log calibration
#: (CATEGORY_WEIGHTS: nic 0.07 over 2N cards vs hub 0.04 over 2 hubs —
#: an individual hub is far more failure-prone than an individual NIC).
def hub_nic_weight_ratio(n: int, nic_share: float = 0.07, hub_share: float = 0.04) -> float:
    """Per-hub weight / per-NIC weight implied by fleet category shares."""
    if n < 1:
        raise ValueError("need n >= 1")
    per_nic = nic_share / (2 * n)
    per_hub = hub_share / 2
    return per_hub / per_nic


def weighted_failure_matrix(
    n: int,
    f: int,
    iterations: int,
    rng: np.random.Generator,
    hub_weight: float = 1.0,
    nic_weight: float = 1.0,
) -> np.ndarray:
    """Sample exactly-f failures with per-kind weights (Gumbel top-k).

    Each row fails ``f`` distinct components with inclusion bias toward
    higher weights — the weighted analogue of
    :func:`repro.analysis.montecarlo.sample_failure_matrix` (which this
    reduces to when the weights are equal).
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    width = 2 * n + 2
    if not 0 <= f <= width:
        raise ValueError(f"f must be in [0, {width}], got {f}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if hub_weight <= 0 or nic_weight <= 0:
        raise ValueError("weights must be positive")
    log_w = np.empty(width)
    log_w[:2] = np.log(hub_weight)
    log_w[2:] = np.log(nic_weight)
    # Gumbel-max top-k: argmax of log w + Gumbel noise realizes successive
    # weighted sampling without replacement (Plackett-Luce).
    gumbel = -np.log(-np.log(rng.random((iterations, width))))
    keys = log_w[None, :] + gumbel
    failed = np.zeros((iterations, width), dtype=bool)
    if f > 0:
        picks = np.argpartition(-keys, f - 1, axis=1)[:, :f]
        np.put_along_axis(failed, picks, True, axis=1)
    return failed


def simulate_weighted_success(
    n: int,
    f: int,
    iterations: int,
    rng: np.random.Generator,
    hub_weight: float = 1.0,
    nic_weight: float = 1.0,
    batch: int = 200_000,
) -> float:
    """Pair survivability under kind-weighted exactly-f failures."""
    remaining = iterations
    good = 0
    while remaining > 0:
        size = min(remaining, batch)
        failed = weighted_failure_matrix(n, f, size, rng, hub_weight=hub_weight, nic_weight=nic_weight)
        good += int(pair_connected_vec(failed).sum())
        remaining -= size
    return good / iterations

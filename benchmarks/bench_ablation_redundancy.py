"""Ablation bench — the value of the second backplane.

Compares dual-backplane Equation-1 survivability with the exact
single-backplane closed form: the architecture DRS's redundant network
replaces never converges to 1 as N grows (more NICs, more ways to lose an
endpoint) while the dual design does — the paper's core architectural bet.
"""

from repro.analysis import success_probability
from repro.experiments.ablations import single_backplane_success


def test_dual_beats_single_everywhere(benchmark, capsys):
    def table():
        rows = []
        for n in (8, 16, 32, 63):
            for f in (2, 3, 4):
                rows.append((n, f, success_probability(n, f), single_backplane_success(n, f)))
        return rows

    rows = benchmark(table)
    with capsys.disabled():
        print()
        for n, f, dual, single in rows:
            print(f"  N={n:2d} f={f}: dual={dual:.4f} single={single:.4f}")
    for n, f, dual, single in rows:
        assert dual > single, (n, f)


def test_single_backplane_does_not_converge_to_one(benchmark):
    def limits():
        return single_backplane_success(1000, 2), success_probability(1000, 2)

    single, dual = benchmark(limits)
    # dual converges to 1; single is capped by the hub + endpoint exposure
    assert dual > 0.99999
    assert single < 0.999

"""The declarative experiment registry."""

import pytest

import repro.experiments  # noqa: F401  — registers every spec
from repro.engine import ExperimentSpec, experiment_specs, get_spec, spec_names
from repro.engine.spec import PROFILES


def test_every_experiment_module_registers_a_spec():
    assert spec_names() == [
        "figure1",
        "figure2",
        "figure3",
        "crossovers",
        "motivation",
        "failover",
        "desval",
        "ablations",
        "grayfailure",
        "wholecluster",
        "availability",
        "scenarios",
        "desval-curve",
        "scaling",
        "topologysweep",
    ]


def test_specs_have_both_profiles_and_callables():
    for spec in experiment_specs():
        assert callable(spec.run), spec.name
        assert set(spec.profiles) == set(PROFILES), spec.name


def test_quick_profiles_are_strict_reductions():
    # quick kwargs must be accepted by run(); smoke-call signature binding
    import inspect

    for spec in experiment_specs():
        sig = inspect.signature(spec.run)
        for profile in PROFILES:
            sig.bind_partial(**spec.kwargs(profile))


def test_kwargs_returns_a_copy():
    spec = get_spec("figure2")
    first = spec.kwargs("quick")
    first["mc_iterations"] = -1
    assert spec.kwargs("quick") != first


def test_sweep_specs_are_parallel_and_seeded():
    for name in ("figure2", "figure3", "desval", "availability", "wholecluster", "ablations",
                 "topologysweep"):
        spec = get_spec(name)
        assert spec.parallel, name
        assert spec.accepts_seed, name
    # DES-deterministic sweep: parallel but with no seed knob
    assert get_spec("scaling").parallel
    assert not get_spec("scaling").accepts_seed


def test_get_spec_unknown_name_raises():
    with pytest.raises(KeyError):
        get_spec("nonesuch")


def test_spec_requires_both_profiles():
    with pytest.raises(ValueError):
        ExperimentSpec(name="bad", run=lambda: None, profiles={"quick": {}})


def test_unknown_profile_rejected():
    with pytest.raises(KeyError):
        get_spec("figure2").kwargs("medium")

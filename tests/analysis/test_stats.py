"""Tests for Wilson intervals and precision-targeted Monte Carlo."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_to_precision,
    mc_success_estimate,
    success_probability,
    wilson_interval,
)


def test_wilson_basic_properties():
    est = wilson_interval(80, 100)
    assert est.point == 0.8
    assert est.low < 0.8 < est.high
    assert 0 <= est.low <= est.high <= 1
    assert est.half_width == pytest.approx((est.high - est.low) / 2)


def test_wilson_edge_counts():
    zero = wilson_interval(0, 50)
    assert zero.low == 0.0 and zero.high > 0.0
    full = wilson_interval(50, 50)
    assert full.high == 1.0 and full.low < 1.0


def test_wilson_narrows_with_trials():
    small = wilson_interval(8, 10)
    large = wilson_interval(8000, 10000)
    assert large.half_width < small.half_width


def test_wilson_confidence_levels():
    n90 = wilson_interval(50, 100, confidence=0.90)
    n99 = wilson_interval(50, 100, confidence=0.99)
    assert n99.half_width > n90.half_width
    with pytest.raises(ValueError):
        wilson_interval(50, 100, confidence=0.42)


def test_wilson_validation():
    with pytest.raises(ValueError):
        wilson_interval(5, 0)
    with pytest.raises(ValueError):
        wilson_interval(-1, 10)
    with pytest.raises(ValueError):
        wilson_interval(11, 10)


def test_wilson_coverage_empirical():
    # ~95% of intervals should cover the true p
    rng = np.random.default_rng(0)
    p_true = 0.3
    covered = 0
    runs = 400
    for _ in range(runs):
        successes = rng.binomial(200, p_true)
        est = wilson_interval(int(successes), 200)
        covered += est.low <= p_true <= est.high
    assert covered / runs > 0.90


def test_estimate_to_precision_reaches_target():
    rng = np.random.default_rng(1)
    p_true = 0.7

    def batch(k):
        return int(rng.binomial(k, p_true))

    est = estimate_to_precision(batch, target_half_width=0.01, batch=2_000)
    assert est.half_width <= 0.01
    assert abs(est.point - p_true) < 0.05


def test_estimate_to_precision_respects_budget():
    rng = np.random.default_rng(2)
    est = estimate_to_precision(
        lambda k: int(rng.binomial(k, 0.5)),
        target_half_width=1e-6,  # unreachable within the budget
        batch=1_000,
        max_trials=5_000,
    )
    assert est.trials == 5_000
    assert est.half_width > 1e-6


def test_estimate_to_precision_validation():
    with pytest.raises(ValueError):
        estimate_to_precision(lambda k: 0, target_half_width=0)
    with pytest.raises(ValueError):
        estimate_to_precision(lambda k: 0, target_half_width=0.1, batch=0)
    with pytest.raises(ValueError):
        estimate_to_precision(lambda k: k + 1, target_half_width=0.1, batch=10)


def test_mc_success_estimate_brackets_equation1():
    rng = np.random.default_rng(3)
    n, f = 12, 3
    est = mc_success_estimate(n, f, rng, target_half_width=0.005)
    exact = success_probability(n, f)
    assert est.half_width <= 0.005
    # generous 2x interval check: the CI should bracket the closed form
    margin = 2 * est.half_width
    assert est.point - margin <= exact <= est.point + margin

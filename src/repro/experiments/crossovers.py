"""TAB-CROSS — the paper's prose crossover table.

"For f=2 the P[S] surpasses 0.99 at 18 nodes.  For f=3 the P[S] surpasses
0.99 at 3[2] nodes, and for f=4 the P[S] surpasses 0.99 at 45 nodes."

With ``mc_iterations > 0`` the analytic table gains a Monte Carlo
validation column: one curve-level engine job per N runs the
common-random-numbers sweep kernel
(:func:`repro.analysis.montecarlo.simulate_grid`) over the whole f-family,
and the reduction reads each f's simulated crossover off the shared
estimates.  Because the per-N draws are shared across f (nested failure
sets), the simulated crossovers are monotone in f *by construction* — they
cannot jitter past each other the way independently sampled curves did.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import crossover_n, simulate_grid, success_probability
from repro.engine import ExperimentSpec, Job, JobPlan, cell_point, register, run_plan
from repro.experiments.base import (
    ExperimentResult,
    add_precision_artifacts,
    collect_precision_cells,
)

PAPER_CROSSOVERS = {2: 18, 3: 32, 4: 45}

F_VALUES = (2, 3, 4, 5, 6, 7, 8, 9, 10)


def _mc_curve(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> dict[str, Any]:
    """Engine job: sweep-kernel P[Success] at one N for every requested f.

    With a ``target_ci`` in the params the kernel stops each cell at that
    Wilson half-width and the row carries full precision dicts instead of
    bare floats (see :mod:`repro.experiments.figure2`).
    """
    rng = np.random.default_rng(seed_seq)
    target = params.get("target_ci")
    if target is not None:
        cells = simulate_grid(
            params["n"],
            tuple(params["fs"]),
            params["iterations"],
            rng,
            target_half_width=target,
            confidence=params.get("ci_confidence", 0.95),
        )
        return {str(f): cell.to_row() for f, cell in cells.items()}
    estimates = simulate_grid(params["n"], tuple(params["fs"]), params["iterations"], rng)
    return {str(f): p for f, p in estimates.items()}


def build_plan(
    f_values: tuple[int, ...] = F_VALUES,
    threshold: float = 0.99,
    mc_iterations: int = 0,
    seed: int = 2000,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
) -> JobPlan:
    """Analytic crossovers, plus one curve-level MC job per probed N.

    The probe domain is sized from the (memoized) analytic scan: a little
    past the largest crossover, so every f's simulated crossing falls
    inside the sampled range.
    """
    n_stars = {f: crossover_n(f, threshold=threshold) for f in f_values}
    jobs = []
    n_lo = max(2, min(f_values) + 1)
    n_hi = max(n_stars.values()) + 2
    if mc_iterations > 0:
        for n in range(n_lo, n_hi + 1):
            fs = [f for f in f_values if n >= max(2, f + 1)]
            params: dict[str, Any] = {"n": n, "fs": fs, "iterations": mc_iterations}
            if target_ci is not None:
                params["target_ci"] = target_ci
                params["ci_confidence"] = ci_confidence
            jobs.append(Job(name=f"mc/n={n}", fn=_mc_curve, params=params))

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("crossovers")
        result.meta = {
            "seed": seed,
            "f_values": list(f_values),
            "threshold": threshold,
            "mc_iterations": mc_iterations,
        }
        if target_ci is not None:
            result.meta["target_ci"] = target_ci
            result.meta["ci_confidence"] = ci_confidence
        rows = []
        for f in f_values:
            n_star = n_stars[f]
            paper = PAPER_CROSSOVERS.get(f, "-")
            rows.append(
                [
                    f,
                    n_star,
                    paper,
                    float(success_probability(n_star, f)),
                    float(success_probability(n_star - 1, f)) if n_star > f + 1 else float("nan"),
                ]
            )
        result.add_table(
            "crossovers",
            ["f", f"N where P[S] > {threshold}", "paper", "P[S] at N*", "P[S] at N*-1"],
            rows,
            caption="0.99 crossover cluster sizes (paper states f=2,3,4)",
        )
        matches = all(crossover_n(f, threshold) == n for f, n in PAPER_CROSSOVERS.items())
        result.note(f"paper checkpoints (18/32/45) reproduced exactly: {matches}")
        if mc_iterations > 0:
            mc_rows = []
            for f in f_values:
                mc_star = None
                for n in range(max(2, f + 1), n_hi + 1):
                    estimate = cell_point(values, f"mc/n={n}", str(f))
                    if estimate > threshold:  # NaN (quarantined) compares False
                        mc_star = n
                        break
                mc_rows.append(
                    [f, n_stars[f], mc_star if mc_star is not None else float("nan")]
                )
            result.add_table(
                "mc_crossovers",
                ["f", "analytic N*", f"simulated N* ({mc_iterations} iterations)"],
                mc_rows,
                caption="Sweep-kernel validation: simulated vs analytic crossovers",
            )
            result.note(
                "simulated crossovers share per-N draws across f (common random "
                "numbers), so they are monotone in f by construction"
            )
            add_precision_artifacts(
                result, collect_precision_cells(values), target_ci, ci_confidence
            )
        return result

    return JobPlan(
        experiment="crossovers",
        seed=seed,
        jobs=jobs,
        reduce=reduce,
        meta={"total_trials": sum(j.params.get("iterations", 0) for j in jobs)},
    )


def run(
    f_values: tuple[int, ...] = F_VALUES,
    threshold: float = 0.99,
    mc_iterations: int = 0,
    seed: int = 2000,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Compute 0.99 crossovers for each f and compare with the paper.

    ``mc_iterations > 0`` adds the sweep-kernel validation table (one
    curve-level job per probed N); the analytic table is always computed in
    the reduction.  ``target_ci`` makes the validation adaptive (every
    cell stops at that Wilson half-width) and adds the ``mc_precision``
    table plus a manifest precision block.
    """
    plan = build_plan(
        f_values=f_values,
        threshold=threshold,
        mc_iterations=mc_iterations,
        seed=seed,
        target_ci=target_ci,
        ci_confidence=ci_confidence,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="crossovers",
        run=run,
        profiles={"quick": {"mc_iterations": 2_000}, "full": {"mc_iterations": 20_000}},
        parallel=True,
        order=40,
        description="prose 0.99 crossovers (18/32/45), with MC validation",
    )
)

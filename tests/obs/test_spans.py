"""Unit tests for the causal span layer and its Chrome-trace export."""

import json

import pytest

from repro.obs.spans import (
    SPAN_CATEGORY,
    Span,
    SpanLog,
    load_trace_jsonl,
    span_log,
    spans_from_entries,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.simkit import Simulator, TraceRecorder


def _log():
    sim = Simulator()
    return sim, SpanLog(TraceRecorder(sim))


def test_begin_end_emits_one_trace_entry():
    sim, log = _log()
    span = log.begin("work", "failover", node=3, peer=7)
    assert not span.closed and span.duration is None
    sim.schedule(2.5, lambda: log.end(span, outcome="two-hop"))
    sim.run()
    assert span.closed and span.duration == pytest.approx(2.5)
    assert span.attrs == {"peer": 7, "outcome": "two-hop"}
    (entry,) = log.trace.entries(SPAN_CATEGORY)
    assert entry.fields["span_id"] == span.span_id
    assert entry.fields["start"] == 0.0 and entry.fields["end"] == 2.5


def test_end_is_idempotent():
    _, log = _log()
    span = log.closed("probe", "probe", start=1.0, end=2.0)
    log.end(span, end=99.0)  # second end must not move or re-emit
    assert span.end == 2.0
    assert log.trace.count(SPAN_CATEGORY) == 1


def test_child_inherits_incident_from_parent():
    _, log = _log()
    root = log.incident_begin("hub0", kind="hub")
    child = log.begin("failover", "failover", parent=root)
    grandchild = log.begin("discovery", "discovery", parent=child)
    assert root.incident_id == root.span_id
    assert child.incident_id == root.span_id
    assert grandchild.incident_id == root.span_id
    assert grandchild.parent_id == child.span_id


def test_find_incident_prefers_physical_component():
    _, log = _log()
    log.incident_begin("hub1", kind="hub")
    nic = log.incident_begin("nic5.0", kind="nic")
    assert log.find_incident(node=2, peer=5, network=0) is nic
    hub = log.find_incident(node=2, peer=3, network=1)
    assert hub is not None and hub.attrs["component"] == "hub1"
    # no physical match: falls back to the most recent open incident
    assert log.find_incident(node=0, peer=1, network=9) is nic
    log.incident_end("nic5.0")
    log.incident_end("hub1")
    assert log.find_incident(node=2, peer=5, network=0) is None


def test_flush_seals_open_spans_as_unfinished():
    sim, log = _log()
    log.incident_begin("hub0")
    sim.schedule(4.0, lambda: None)
    sim.run()
    (flushed,) = log.flush()
    assert flushed.end == 4.0 and flushed.attrs["unfinished"] is True
    assert log.flush() == []  # nothing left open


def test_span_log_is_shared_per_recorder():
    sim = Simulator()
    trace = TraceRecorder(sim)
    assert span_log(trace) is span_log(trace)
    assert span_log(TraceRecorder(sim)) is not span_log(trace)


def test_wants_follows_category_filter():
    sim = Simulator()
    trace = TraceRecorder(sim)
    log = span_log(trace)
    assert log.wants()
    trace.disable_category(SPAN_CATEGORY)
    assert not log.wants()


def test_spans_round_trip_through_jsonl(tmp_path):
    from repro.obs.artifacts import write_trace_jsonl

    sim, log = _log()
    root = log.incident_begin("nic1.0", kind="nic")
    child = log.begin("failover", "failover", node=2, parent=root, peer=1)
    sim.schedule(0.5, lambda: log.end(child, outcome="direct-swap"))
    sim.schedule(3.0, lambda: log.incident_end("nic1.0"))
    sim.run()
    path = write_trace_jsonl(log.trace, tmp_path / "run.trace.jsonl")
    rebuilt = spans_from_entries(load_trace_jsonl(path))
    assert [s.span_id for s in rebuilt] == [root.span_id, child.span_id]
    got = {s.span_id: s for s in rebuilt}
    assert got[child.span_id].parent_id == root.span_id
    assert got[child.span_id].incident_id == root.span_id
    assert got[child.span_id].attrs["outcome"] == "direct-swap"
    assert got[root.span_id].duration == pytest.approx(3.0)
    # live entries and dict rows reconstruct identically
    assert spans_from_entries(log.trace.entries()) == rebuilt


def test_chrome_trace_layout_and_validation():
    spans = [
        Span(1, "incident:hub0", "fault", 1.0, 5.0, attrs={"component": "hub0"}),
        Span(2, "failover", "failover", 2.0, 3.0, parent_id=1, incident_id=1, node=4),
    ]
    instants = [{"category": "drs-detect", "time": 2.0, "node": 4, "peer": 0}]
    doc = to_chrome_trace(spans, instants)
    assert validate_chrome_trace(doc) == []
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in complete} == {0, 5}  # cluster lane + node4
    by_name = {e["name"]: e for e in complete}
    assert by_name["failover"]["ts"] == pytest.approx(2e6)
    assert by_name["failover"]["dur"] == pytest.approx(1e6)
    assert by_name["failover"]["args"]["incident_id"] == 1
    assert any(e["ph"] == "i" and e["name"] == "drs-detect" for e in doc["traceEvents"])
    names = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert {"cluster", "node4", "fault", "failover"} <= names


def test_open_span_exported_to_horizon():
    spans = [
        Span(1, "incident:hub0", "fault", 1.0, None),
        Span(2, "later", "failover", 6.0, 8.0),
    ]
    doc = to_chrome_trace(spans)
    open_event = next(e for e in doc["traceEvents"] if e["name"] == "incident:hub0")
    assert open_event["dur"] == pytest.approx((8.0 - 1.0) * 1e6)


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = write_chrome_trace(tmp_path / "t.spans.json", [Span(1, "a", "fault", 0.0, 1.0)])
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace([]) != []
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "X", "name": "x", "pid": 1, "ts": -1.0, "dur": None},
            {"ph": "X", "pid": "one", "ts": 0.0, "dur": 1.0},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert len(problems) >= 4
    assert any("unknown ph" in p for p in problems)
    assert any("dur" in p for p in problems)

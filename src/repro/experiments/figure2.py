"""FIG2 — "Convergence of P[Success] to 1".

Regenerates the paper's Figure 2: Equation-1 P[Success] versus cluster size
for f = 2..10 simultaneous failures over the paper's domain f < N < 64,
optionally overlaid with Monte Carlo estimates from the validation
simulator.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import simulate_curve, success_curve
from repro.experiments.base import ExperimentResult

F_VALUES = tuple(range(2, 11))


def run(
    f_values: tuple[int, ...] = F_VALUES,
    n_max: int = 63,
    mc_iterations: int = 0,
    seed: int = 2000,
) -> ExperimentResult:
    """Regenerate Figure 2.

    ``mc_iterations > 0`` adds a Monte Carlo overlay series per f (the
    paper's simulation points).
    """
    result = ExperimentResult("figure2")
    result.meta = {
        "seed": seed,
        "f_values": list(f_values),
        "n_max": n_max,
        "mc_iterations": mc_iterations,
    }
    curves: dict[str, tuple] = {}
    for f in f_values:
        ns, ps = success_curve(f, n_max=n_max)
        curves[f"f={f}"] = (ns, ps)
    result.add_series(
        "equation1",
        curves,
        caption="Figure 2: P[Success] vs nodes (Equation 1)",
        x_label="nodes",
        y_label="P[Success]",
    )
    if mc_iterations > 0:
        rng = np.random.default_rng(seed)
        mc_curves: dict[str, tuple] = {}
        for f in f_values:
            ns, ps = simulate_curve(f, iterations=mc_iterations, rng=rng, n_max=n_max)
            mc_curves[f"sim f={f}"] = (ns, ps)
        result.add_series(
            "montecarlo",
            mc_curves,
            caption=f"Figure 2 overlay: Monte Carlo, {mc_iterations} iterations",
            x_label="nodes",
            y_label="P[Success]",
        )
    # summary rows the paper quotes in prose
    rows = []
    for f in f_values:
        ns, ps = curves[f"f={f}"]
        rows.append([f, float(ps[0]), float(ps[-1])])
    result.add_table(
        "endpoints",
        ["f", f"P[S] at N=f+1", f"P[S] at N={n_max}"],
        rows,
        caption="Curve endpoints: every f-series climbs toward 1",
    )
    return result

"""Server node: a chassis holding NICs and dispatching frames upward."""

from __future__ import annotations

from typing import Callable

from repro.netsim.addresses import InterfaceAddr, NetworkId, NodeId
from repro.netsim.frames import Frame
from repro.netsim.nic import Nic
from repro.simkit import Simulator

FrameHandler = Callable[[Frame, Nic], None]


class Node:
    """One server in the cluster.

    The node layer is deliberately protocol-agnostic: it owns the NICs and a
    demultiplexer keyed on :attr:`Frame.protocol`.  The protocol stack in
    :mod:`repro.protocols` registers its handlers here, which keeps the
    physical substrate reusable for the baseline protocols too.
    """

    def __init__(self, sim: Simulator, node_id: NodeId) -> None:
        self.sim = sim
        self.node_id = node_id
        self.nics: dict[NetworkId, Nic] = {}
        self._handlers: dict[str, FrameHandler] = {}

    def add_nic(self, nic: Nic) -> None:
        """Install a NIC; one per network."""
        net = nic.addr.network
        if net in self.nics:
            raise ValueError(f"node {self.node_id} already has a NIC on network {net}")
        if nic.addr.node != self.node_id:
            raise ValueError(f"NIC {nic.addr} does not belong to node {self.node_id}")
        self.nics[net] = nic
        nic.set_receiver(self._on_frame)

    def register_handler(self, protocol: str, handler: FrameHandler) -> None:
        """Register the upper-layer handler for a protocol demux key."""
        if protocol in self._handlers:
            raise ValueError(f"node {self.node_id}: handler for {protocol!r} already registered")
        self._handlers[protocol] = handler

    def _on_frame(self, frame: Frame, nic: Nic) -> None:
        handler = self._handlers.get(frame.protocol)
        if handler is not None:
            handler(frame, nic)
        # Unhandled protocols are dropped silently, like an unbound ethertype.

    # ------------------------------------------------------------------ send
    def send_frame(self, network: NetworkId, dst: InterfaceAddr, protocol: str, payload: object) -> bool:
        """Transmit one frame out of the NIC on ``network``.

        Returns False if this node has no NIC there or the NIC refused it.
        """
        nic = self.nics.get(network)
        if nic is None:
            return False
        frame = Frame(src=nic.addr, dst=dst, protocol=protocol, payload=payload)
        return nic.send(frame)

    def nic_addr(self, network: NetworkId) -> InterfaceAddr:
        """This node's address on ``network`` (raises KeyError if absent)."""
        return self.nics[network].addr

    @property
    def networks(self) -> list[NetworkId]:
        """Networks this node is attached to, sorted."""
        return sorted(self.nics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} nets={self.networks}>"

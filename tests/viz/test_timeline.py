"""Tests for the outage timeline renderer."""

import pytest

from repro.drs import install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator
from repro.viz import render_timeline

from tests.drs.conftest import FAST


def _trace_with_failure():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    sim.schedule(1.0, lambda: cluster.faults.fail("nic1.0"))
    sim.schedule(4.0, lambda: cluster.faults.repair("nic1.0"))
    sim.run(until=6.0)
    return cluster.trace.entries()


def test_timeline_shows_fault_window_and_repairs():
    text = render_timeline(_trace_with_failure(), t_end=6.0)
    lines = text.splitlines()
    nic_lane = next(l for l in lines if l.startswith("nic1.0"))
    assert "X" in nic_lane
    assert nic_lane.index("X") > 12  # failure starts mid-lane, not at t=0
    pair_lane = next(l for l in lines if l.startswith("node0->1"))
    assert "r" in pair_lane
    # repair lands inside the component's down-window
    nic_window = range(nic_lane.index("X"), len(nic_lane.rstrip()))
    assert pair_lane.index("r") in nic_window
    assert "legend" in lines[-1]


def test_timeline_restore_glyph_after_two_hop_heal():
    # a two-hop repair whose direct link heals produces a drs-restore (R)
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=3.0)
    cluster.faults.repair("nic1.0")
    sim.run(until=5.0)
    text = render_timeline(cluster.trace.entries(), t_end=5.0, node=0)
    pair_lane = next(l for l in text.splitlines() if l.startswith("node0->1"))
    assert "R" in pair_lane


def test_timeline_open_ended_failure_runs_to_edge():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    cluster.faults.fail("hub0")
    sim.run(until=2.0)
    text = render_timeline(cluster.trace.entries(), t_end=2.0)
    hub_lane = next(l for l in text.splitlines() if l.startswith("hub0"))
    assert hub_lane.rstrip().endswith("X")


def test_timeline_node_filter():
    entries = _trace_with_failure()
    text = render_timeline(entries, t_end=6.0, node=2)
    lanes = [l for l in text.splitlines() if l.startswith("node")]
    assert lanes and all(l.startswith("node2->") for l in lanes)


def test_timeline_validation():
    with pytest.raises(ValueError):
        render_timeline([], width=5)
    with pytest.raises(ValueError):
        render_timeline([], t_start=5.0, t_end=5.0)


def test_timeline_empty_trace_renders_axis():
    text = render_timeline([], t_end=10.0)
    assert "time" in text and "legend" in text

"""Property-based tests (hypothesis) on the survivability model's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bad_combinations,
    comb0,
    covering_nic_failures,
    enumerate_success_probability,
    good_combinations,
    success_probability,
    total_combinations,
)


@given(n=st.integers(2, 200), f=st.integers(0, 20))
def test_probability_always_in_unit_interval(n, f):
    f = min(f, 2 * n + 2)
    p = success_probability(n, f)
    assert 0.0 <= p <= 1.0


@given(n=st.integers(2, 100), f=st.integers(0, 20))
def test_counts_are_nonnegative_and_partition_total(n, f):
    f = min(f, 2 * n + 2)
    bad = bad_combinations(n, f)
    good = good_combinations(n, f)
    assert bad >= 0 and good >= 0
    assert bad + good == total_combinations(n, f)


@given(n=st.integers(3, 120), f=st.integers(2, 10))
def test_monotone_in_n(n, f):
    from hypothesis import assume

    assume(f <= 2 * n + 2)
    # adding a node (more intermediates, more components) never hurts the pair
    assert success_probability(n + 1, f) >= success_probability(n, f) - 1e-12


@given(n=st.integers(6, 120), f=st.integers(0, 9))
def test_monotone_in_f(n, f):
    # one more simultaneous failure never helps
    assert success_probability(n, f) >= success_probability(n, f + 1) - 1e-12


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 6), f=st.integers(0, 6))
def test_closed_form_equals_enumeration(n, f):
    f = min(f, 2 * n + 2)
    assert abs(success_probability(n, f) - enumerate_success_probability(n, f)) < 1e-12


@given(m=st.integers(0, 12), j=st.integers(0, 30))
def test_covering_failures_bounded_by_all_subsets(m, j):
    t = covering_nic_failures(m, j)
    assert 0 <= t <= comb0(2 * m, j)


@given(m=st.integers(0, 10))
def test_covering_failures_sum_is_inclusion_exclusion_total(m):
    # summing T(m, j) over j counts all subsets hitting every node:
    # total = sum_k C(m,k)(-1)^k 4^(m-k) ... equivalently 3^m subsets per node
    # choice pattern: each node contributes {nic0}, {nic1}, or {both}
    assert sum(covering_nic_failures(m, j) for j in range(0, 2 * m + 1)) == 3**m


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 20), f=st.integers(0, 8), seed=st.integers(0, 2**32 - 1))
def test_montecarlo_within_coarse_bounds(n, f, seed):
    from repro.analysis import simulate_success_probability

    f = min(f, 2 * n + 2)
    rng = np.random.default_rng(seed)
    estimate = simulate_success_probability(n, f, iterations=3_000, rng=rng)
    exact = success_probability(n, f)
    # 3000 iterations: 5 sigma of a Bernoulli(p) mean is < 0.046
    assert abs(estimate - exact) < 0.06


@given(
    n=st.integers(2, 40),
    f=st.integers(0, 12),
    data=st.data(),
)
def test_failure_matrix_rows_exact(n, f, data):
    from repro.analysis import sample_failure_matrix

    f = min(f, 2 * n + 2)
    seed = data.draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    failed = sample_failure_matrix(n, f, 64, rng)
    assert (failed.sum(axis=1) == f).all()

"""Unit tests for fault injection and the component universe."""

import numpy as np
import pytest

from repro.netsim import (
    FaultInjector,
    FaultScenario,
    build_dual_backplane_cluster,
    component_universe,
)
from repro.netsim.component import Component, ComponentKind
from repro.simkit import Simulator, TraceRecorder


def _cluster(n=4):
    sim = Simulator()
    return sim, build_dual_backplane_cluster(sim, n)


def test_component_universe_ordering_matches_analytic_model():
    sim, cluster = _cluster(n=3)
    comps = component_universe(cluster)
    assert [c.name for c in comps] == [
        "hub0", "hub1",
        "nic0.0", "nic0.1",
        "nic1.0", "nic1.1",
        "nic2.0", "nic2.1",
    ]
    assert len(comps) == 2 * 3 + 2


def test_fail_and_repair_by_name():
    sim, cluster = _cluster()
    fi = cluster.faults
    fi.fail("nic2.1")
    assert not cluster.nodes[2].nics[1].up
    assert [c.name for c in fi.failed_components()] == ["nic2.1"]
    fi.repair("nic2.1")
    assert cluster.all_up()


def test_unknown_component_raises():
    sim, cluster = _cluster()
    with pytest.raises(KeyError):
        cluster.faults.fail("nic99.0")


def test_fail_is_idempotent_and_traced_once():
    sim, cluster = _cluster()
    cluster.faults.fail("hub0")
    cluster.faults.fail("hub0")
    assert cluster.trace.count("fault") == 1
    assert cluster.backplanes[0].fail_count == 1


def test_scripted_scenario_runs_in_order():
    sim, cluster = _cluster()
    scenario = FaultScenario().fail(1.0, "hub0").repair(3.0, "hub0").fail(5.0, "nic0.0")
    cluster.faults.schedule(scenario)
    sim.run(until=2.0)
    assert not cluster.backplanes[0].up
    sim.run(until=4.0)
    assert cluster.backplanes[0].up
    sim.run(until=6.0)
    assert not cluster.nodes[0].nics[0].up


def test_apply_exact_failures_fails_exactly_f_distinct():
    sim, cluster = _cluster(n=10)
    rng = np.random.default_rng(42)
    chosen = cluster.faults.apply_exact_failures(5, rng)
    assert len(chosen) == 5
    assert len({c.name for c in chosen}) == 5
    assert len(cluster.faults.failed_components()) == 5


def test_apply_exact_failures_bounds():
    sim, cluster = _cluster(n=3)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        cluster.faults.apply_exact_failures(9, rng)  # only 8 components
    with pytest.raises(ValueError):
        cluster.faults.apply_exact_failures(-1, rng)


def test_apply_exact_failures_uniform_coverage():
    # every component should be hit sometimes across many draws
    sim, cluster = _cluster(n=4)
    rng = np.random.default_rng(7)
    seen = set()
    for _ in range(300):
        cluster.faults.repair_all()
        for c in cluster.faults.apply_exact_failures(2, rng):
            seen.add(c.name)
    assert seen == {c.name for c in cluster.faults.components}


def test_repair_all():
    sim, cluster = _cluster()
    rng = np.random.default_rng(1)
    cluster.faults.apply_exact_failures(4, rng)
    cluster.faults.repair_all()
    assert cluster.all_up()


def test_random_lifetime_faults_toggle_components():
    sim, cluster = _cluster(n=3)
    rng = np.random.default_rng(3)
    cluster.faults.start_random_faults(rng, mtbf_s=10.0, mttr_s=2.0)
    sim.run(until=200.0)
    fails = sum(c.fail_count for c in cluster.faults.components)
    repairs = sum(c.repair_count for c in cluster.faults.components)
    assert fails > 0 and repairs > 0
    cluster.faults.stop_random_faults()
    pending_before = sim.pending
    sim.run(until=201.0)
    assert sim.pending <= pending_before  # lifecycles no longer rescheduling


def test_random_faults_validation():
    sim, cluster = _cluster()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        cluster.faults.start_random_faults(rng, mtbf_s=0, mttr_s=1)


def test_duplicate_component_names_rejected():
    sim = Simulator()
    comps = [Component("x", ComponentKind.NIC), Component("x", ComponentKind.NIC)]
    with pytest.raises(ValueError):
        FaultInjector(sim, comps)


def test_listener_notified_on_transitions():
    comp = Component("c", ComponentKind.HUB)
    log = []
    comp.on_state_change(lambda c, up: log.append((c.name, up)))
    comp.fail()
    comp.fail()  # no duplicate notification
    comp.repair()
    assert log == [("c", False), ("c", True)]


def test_cluster_builder_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_dual_backplane_cluster(sim, 1)


def test_cluster_accessors():
    sim, cluster = _cluster(n=5)
    assert cluster.n == 5
    assert cluster.node(3).node_id == 3
    assert cluster.all_up()

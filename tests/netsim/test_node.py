"""Unit tests for node frame dispatch."""

import pytest

from repro.netsim import Backplane, InterfaceAddr, Nic, Node
from repro.simkit import Simulator


class _Payload:
    size_bytes = 28


def _two_nodes():
    sim = Simulator()
    bps = [Backplane(sim, 0), Backplane(sim, 1)]
    nodes = []
    for i in range(2):
        node = Node(sim, i)
        for net in (0, 1):
            node.add_nic(Nic(InterfaceAddr(i, net), bps[net]))
        nodes.append(node)
    return sim, bps, nodes


def test_send_frame_and_protocol_dispatch():
    sim, bps, (a, b) = _two_nodes()
    got = []
    b.register_handler("ping", lambda f, nic: got.append((f.protocol, nic.addr.network)))
    assert a.send_frame(0, b.nic_addr(0), "ping", _Payload())
    assert a.send_frame(1, b.nic_addr(1), "ping", _Payload())
    sim.run()
    assert sorted(got) == [("ping", 0), ("ping", 1)]


def test_unregistered_protocol_silently_dropped():
    sim, bps, (a, b) = _two_nodes()
    a.send_frame(0, b.nic_addr(0), "mystery", _Payload())
    sim.run()  # no exception


def test_send_on_missing_network_returns_false():
    sim, bps, (a, b) = _two_nodes()
    assert a.send_frame(7, b.nic_addr(0), "ping", _Payload()) is False


def test_duplicate_handler_rejected():
    sim, bps, (a, b) = _two_nodes()
    a.register_handler("x", lambda f, nic: None)
    with pytest.raises(ValueError):
        a.register_handler("x", lambda f, nic: None)


def test_duplicate_nic_rejected():
    sim = Simulator()
    bp0 = Backplane(sim, 0)
    node = Node(sim, 0)
    node.add_nic(Nic(InterfaceAddr(0, 0), bp0))
    bp0b = Backplane(sim, 0)
    with pytest.raises(ValueError):
        node.add_nic(Nic(InterfaceAddr(0, 0), bp0b))


def test_foreign_nic_rejected():
    sim = Simulator()
    bp = Backplane(sim, 0)
    node = Node(sim, 0)
    with pytest.raises(ValueError):
        node.add_nic(Nic(InterfaceAddr(9, 0), bp))


def test_networks_property():
    sim, bps, (a, _) = _two_nodes()
    assert a.networks == [0, 1]

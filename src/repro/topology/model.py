"""The topology model: survivability over arbitrary component graphs.

The paper's Equation 1 is a statement about one specific graph — an N-node
cluster with two backplane hubs and one NIC per node per backplane — and
the original estimators hard-wired that graph's success predicate.  This
module factors the graph itself out into a first-class object so the same
estimator machinery (exact enumeration, vectorized Monte Carlo, the
common-random-numbers sweep kernel) runs over *any* topology:

* :class:`Topology` — vertices with typed roles, an undirected edge list,
  the ordered *failure universe* (which vertices can fail, and in which
  canonical order — the order defines the failure-rank semantics of the
  CRN sweep kernel), the *terminal* vertices survivability is asked about,
  and optional per-site failure weights.
* :class:`ConnectivityPredicate` and its shipped variants —
  :class:`PairConnected` (source/sink), :class:`AllTerminalsConnected`
  (whole-cluster), and :class:`TerminalQuorum` (a fraction of terminals
  must remain mutually reachable).  Every shipped predicate is *monotone*:
  failing more components can never turn a disconnected state back into a
  connected one, which is what lets the sweep kernel reduce each sampled
  row to a single breakdown threshold (see docs/topology.md).
* pure-Python reachability (:func:`reachable_from`) — the assumption-free
  reference the exhaustive oracle and the property tests compare the
  vectorized kernels against.

Builders for concrete topology families live in
:mod:`repro.topology.builders`; the vectorized kernels that consume this
model live in :mod:`repro.analysis.topokernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np


def _as_failed_set(failed: Iterable[int]) -> frozenset[int]:
    return failed if isinstance(failed, frozenset) else frozenset(failed)


def reachable_from(
    adjacency: tuple[frozenset[int], ...], alive: Callable[[int], bool], start: int
) -> set[int]:
    """Vertices reachable from ``start`` through alive vertices (plain BFS).

    The reference implementation of connectivity: no vectorization, no
    assumptions.  ``start`` itself must be alive or the result is empty.
    """
    if not alive(start):
        return set()
    seen = {start}
    frontier = [start]
    while frontier:
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                if v not in seen and alive(v):
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return seen


@dataclass(frozen=True)
class ConnectivityPredicate:
    """What "the topology survived this failure set" means.

    Subclasses implement :meth:`holds` — the pure-Python reference form,
    evaluated on one failure set at a time.  The vectorized batch form
    lives in :mod:`repro.analysis.topokernel` and is tested equivalent.
    Every shipped predicate is monotone non-increasing in the failure set.
    """

    kind = "abstract"

    def holds(self, topology: "Topology", failed: Iterable[int]) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


@dataclass(frozen=True)
class PairConnected(ConnectivityPredicate):
    """Source/sink survivability: terminals ``a`` and ``b`` stay connected.

    ``a`` and ``b`` index into ``topology.terminals`` (not raw vertex ids),
    mirroring the paper's fixed (A, B) node pair.
    """

    a: int = 0
    b: int = 1
    kind = "pair"

    def holds(self, topology: "Topology", failed: Iterable[int]) -> bool:
        failed = _as_failed_set(failed)
        src = topology.terminals[self.a]
        dst = topology.terminals[self.b]
        reached = reachable_from(topology.adjacency_sets(), lambda v: v not in failed, src)
        return dst in reached

    def describe(self) -> str:
        return f"pair({self.a},{self.b})"


@dataclass(frozen=True)
class AllTerminalsConnected(ConnectivityPredicate):
    """Whole-cluster survivability: every terminal pair stays connected."""

    kind = "all-terminals"

    def holds(self, topology: "Topology", failed: Iterable[int]) -> bool:
        failed = _as_failed_set(failed)
        first = topology.terminals[0]
        reached = reachable_from(topology.adjacency_sets(), lambda v: v not in failed, first)
        return all(t in reached for t in topology.terminals)


@dataclass(frozen=True)
class TerminalQuorum(ConnectivityPredicate):
    """Quorum survivability: one component keeps >= ``fraction`` of terminals.

    The success event of consensus-style workloads: a strict majority (the
    default) of members must remain mutually reachable.  The required count
    is ``floor(fraction * T) + 1`` capped at ``T`` — a strict-majority rule,
    so ``fraction=0.5`` over 4 terminals needs 3.
    """

    fraction: float = 0.5
    kind = "quorum"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(f"quorum fraction must be in [0, 1), got {self.fraction}")

    def required(self, topology: "Topology") -> int:
        t = len(topology.terminals)
        return min(t, int(self.fraction * t) + 1)

    def holds(self, topology: "Topology", failed: Iterable[int]) -> bool:
        failed = _as_failed_set(failed)
        adjacency = topology.adjacency_sets()
        need = self.required(topology)
        remaining = set(topology.terminals)
        while remaining and len(remaining) >= need:
            seed = next(iter(remaining))
            reached = reachable_from(adjacency, lambda v: v not in failed, seed)
            members = {t for t in topology.terminals if t in reached}
            if len(members) >= need:
                return True
            remaining -= members or {seed}
        return False

    def describe(self) -> str:
        return f"quorum({self.fraction:g})"


@dataclass(frozen=True)
class Topology:
    """One survivability scenario: a component graph plus failure semantics.

    Vertices are ``0 .. len(roles) - 1``; ``roles[v]`` is a free-form kind
    label (``"hub"``, ``"nic"``, ``"leaf"``, ...).  ``failure_sites`` lists
    the vertices that *can* fail, in canonical order — that order is the
    component indexing of failure matrices and of the CRN rank kernel, so
    it is part of the reproducibility contract.  ``terminals`` are the
    vertices survivability is asked about; they never fail (model hosts as
    immortal endpoints whose NICs are separate, fragile vertices — exactly
    the paper's decomposition).

    ``weights`` (optional, per failure site, positive) bias exactly-f
    sampling toward heavier sites — the non-uniform failure model of
    :mod:`repro.analysis.weighted` generalized to any graph.

    The three ``*_fn`` hooks let a builder attach specialized closed-form
    fast paths that the generic kernels dispatch to when the default
    predicate is in play (the dual-hub builder wires the Equation 1 closed
    form and the hand-derived vectorized predicate/threshold kernels):

    * ``connected_fn(failed_matrix) -> bool vector`` — batch predicate.
    * ``levels_fn(keys_matrix) -> int vector`` — per-row breakdown
      thresholds over any row-wise comparable key matrix.
    * ``exact_fn(f) -> float`` — closed-form P[Success].

    ``strata_sites`` (optional) names the vertices whose joint failure
    state stratifies the sampling — the "hubs" of the family, in the
    dual-hub sense: few, shared, and disproportionately load-bearing.
    Declaring them opts the topology into the stratified estimators
    (``method="stratified"`` on
    :func:`repro.analysis.topokernel.simulate_topology_grid`): trials are
    allocated across the ``len(strata_sites) + 1`` how-many-strata-sites-
    failed strata with exact hypergeometric weights.  ``stratified_fn``
    additionally attaches a family-specialized stratified kernel (the
    dual-hub builder wires
    :func:`repro.analysis.variance.stratified_grid`, closed-form strata
    plus the control variate) that ``method="stratified-cv"`` requires.
    """

    name: str
    family: str
    roles: tuple[str, ...]
    edges: tuple[tuple[int, int], ...]
    failure_sites: tuple[int, ...]
    terminals: tuple[int, ...]
    predicate: ConnectivityPredicate = field(default_factory=PairConnected)
    weights: tuple[float, ...] | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    connected_fn: Callable[[np.ndarray], np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    levels_fn: Callable[[np.ndarray], np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    exact_fn: Callable[[int], float] | None = field(default=None, repr=False, compare=False)
    strata_sites: tuple[int, ...] | None = None
    stratified_fn: Callable[..., Any] | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        v = len(self.roles)
        if v < 2:
            raise ValueError(f"topology {self.name!r} needs at least 2 vertices, got {v}")
        for a, b in self.edges:
            if not (0 <= a < v and 0 <= b < v):
                raise ValueError(f"edge ({a}, {b}) out of range for {v} vertices")
            if a == b:
                raise ValueError(f"self-loop at vertex {a}")
        if len(set(self.failure_sites)) != len(self.failure_sites):
            raise ValueError("failure_sites must be unique")
        for site in self.failure_sites:
            if not 0 <= site < v:
                raise ValueError(f"failure site {site} out of range for {v} vertices")
        if len(self.terminals) < 1:
            raise ValueError("topology needs at least one terminal")
        for t in self.terminals:
            if not 0 <= t < v:
                raise ValueError(f"terminal {t} out of range for {v} vertices")
        overlap = set(self.terminals) & set(self.failure_sites)
        if overlap:
            raise ValueError(
                f"terminals must be immortal; {sorted(overlap)} appear in failure_sites "
                "(model a fragile endpoint as a separate NIC vertex)"
            )
        if self.weights is not None:
            if len(self.weights) != len(self.failure_sites):
                raise ValueError(
                    f"weights length {len(self.weights)} != "
                    f"{len(self.failure_sites)} failure sites"
                )
            if any(w <= 0 for w in self.weights):
                raise ValueError("failure weights must be positive")
        if self.strata_sites is not None:
            if len(self.strata_sites) == 0:
                raise ValueError("strata_sites must name at least one failure site (or be None)")
            if len(set(self.strata_sites)) != len(self.strata_sites):
                raise ValueError("strata_sites must be unique")
            sites = set(self.failure_sites)
            for site in self.strata_sites:
                if site not in sites:
                    raise ValueError(
                        f"stratum site {site} is not a failure site of topology {self.name!r}"
                    )

    # ------------------------------------------------------------------ shape
    @property
    def num_vertices(self) -> int:
        return len(self.roles)

    @property
    def width(self) -> int:
        """Size of the failure universe (the ``2N + 2`` of the paper)."""
        return len(self.failure_sites)

    def validate_f(self, f: int) -> None:
        """The shared f-validation path of every kernel over this topology.

        Matches :func:`repro.analysis.exact.success_probability`'s contract:
        a clear ``ValueError`` when ``f`` exceeds the component count (or is
        negative) instead of silently sampling nonsense.
        """
        if not 0 <= f <= self.width:
            raise ValueError(
                f"f must be in [0, {self.width}]: topology {self.name!r} has "
                f"{self.width} failable components, got {f}"
            )

    # ------------------------------------------------------------------ views
    def adjacency_sets(self) -> tuple[frozenset[int], ...]:
        """Neighbor sets per vertex (reference-path view; cheap to rebuild)."""
        neighbors: list[set[int]] = [set() for _ in range(self.num_vertices)]
        for a, b in self.edges:
            neighbors[a].add(b)
            neighbors[b].add(a)
        return tuple(frozenset(s) for s in neighbors)

    def adjacency_matrix(self, dtype=np.float32) -> np.ndarray:
        """Dense symmetric adjacency for the batched reachability kernels.

        ``float32`` by default so ``reached @ A`` runs on the BLAS matmul
        path (counts stay exact well past any plausible vertex count).
        """
        adj = np.zeros((self.num_vertices, self.num_vertices), dtype=dtype)
        for a, b in self.edges:
            adj[a, b] = 1
            adj[b, a] = 1
        return adj

    def site_index(self) -> dict[int, int]:
        """Vertex id -> position in the canonical failure-universe order."""
        return {site: i for i, site in enumerate(self.failure_sites)}

    def strata_positions(self) -> tuple[int, ...]:
        """Stratum sites as positions in the canonical failure-universe order.

        Empty when the topology declares no strata; the stratified sweep
        kernel conditions on how many of *these columns* of the failure
        matrix are failed.
        """
        if self.strata_sites is None:
            return ()
        index = self.site_index()
        return tuple(index[site] for site in self.strata_sites)

    def weight_array(self) -> np.ndarray | None:
        """Per-site weights as an array, or None for the uniform model."""
        return None if self.weights is None else np.asarray(self.weights, dtype=float)

    def role_counts(self) -> dict[str, int]:
        """How many failure sites each role contributes (metadata payload)."""
        counts: dict[str, int] = {}
        for site in self.failure_sites:
            counts[self.roles[site]] = counts.get(self.roles[site], 0) + 1
        return counts

    def describe(self) -> dict[str, Any]:
        """Manifest/flight metadata block for this topology."""
        return {
            "name": self.name,
            "family": self.family,
            "vertices": self.num_vertices,
            "edges": len(self.edges),
            "width": self.width,
            "terminals": len(self.terminals),
            "predicate": self.predicate.describe(),
            "roles": self.role_counts(),
            "weighted": self.weights is not None,
            "strata": 0 if self.strata_sites is None else len(self.strata_sites),
            **{k: v for k, v in self.meta.items() if isinstance(v, (int, float, str, bool))},
        }

    # -------------------------------------------------------------- reference
    def connected(self, failed: Iterable[int], predicate: ConnectivityPredicate | None = None) -> bool:
        """Reference evaluation of one failure set (site positions).

        ``failed`` holds positions into ``failure_sites`` (the component
        indexing every kernel shares), not raw vertex ids.
        """
        failed_vertices = frozenset(self.failure_sites[i] for i in failed)
        return (predicate or self.predicate).holds(self, failed_vertices)

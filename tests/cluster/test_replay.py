"""Tests for replaying the fleet failure log on the simulator."""

import numpy as np
import pytest

from repro.cluster import (
    FailureEvent,
    FailureLogConfig,
    generate_failure_log,
    to_fault_scenario,
)
from repro.drs import install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST


def test_scenario_contains_only_network_events():
    events = [
        FailureEvent(time_days=1.0, server=0, category="disk"),
        FailureEvent(time_days=2.0, server=1, category="nic"),
        FailureEvent(time_days=3.0, server=0, category="hub"),
    ]
    scenario = to_fault_scenario(events, cluster_nodes=4)
    # one fail+repair pair per network event
    assert len(scenario.events) == 4
    components = {e.component_name for e in scenario.events}
    assert components <= {"nic1.0", "nic1.1", "hub0", "hub1"}


def test_nic_events_alternate_networks():
    events = [
        FailureEvent(time_days=float(i), server=2, category="nic") for i in range(1, 4)
    ]
    scenario = to_fault_scenario(events, cluster_nodes=4)
    failed = [e.component_name for e in scenario.events if e.action.value == "fail"]
    assert failed == ["nic2.0", "nic2.1", "nic2.0"]


def test_out_of_cluster_servers_skipped():
    events = [FailureEvent(time_days=1.0, server=50, category="nic")]
    assert to_fault_scenario(events, cluster_nodes=4).events == []


def test_repair_follows_mttr_and_timescale():
    events = [FailureEvent(time_days=10.0, server=0, category="nic")]
    scenario = to_fault_scenario(events, cluster_nodes=4, mttr_days=2.0, time_scale=3.0)
    fail, repair = scenario.events
    assert fail.time == pytest.approx(30.0)
    assert repair.time == pytest.approx(36.0)


def test_validation():
    with pytest.raises(ValueError):
        to_fault_scenario([], cluster_nodes=1)
    with pytest.raises(ValueError):
        to_fault_scenario([], cluster_nodes=4, mttr_days=0)


def test_fleet_year_replay_on_des_with_drs():
    # generate a fleet-year, replay its network faults on a DRS cluster,
    # check the protocol repaired around every one it could
    rng = np.random.default_rng(8)
    events = generate_failure_log(FailureLogConfig(servers=8, duration_days=365.0, failures_per_server_year=8.0), rng)
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 8)
    stacks = install_stacks(cluster)
    deployment = install_drs(cluster, stacks, FAST)
    # one sim-second per day; day-long MTTR so outages outlast detection
    scenario = to_fault_scenario(events, cluster_nodes=8, mttr_days=1.0, time_scale=1.0)
    cluster.faults.schedule(scenario)
    horizon = max(e.time for e in scenario.events) + 2.0
    sim.run(until=horizon)
    injected_fails = sum(1 for e in scenario.events if e.action.value == "fail")
    assert injected_fails > 0
    assert deployment.total_repairs() > 0
    # after the last repair the cluster must be whole again
    assert cluster.all_up()
    for daemon in deployment.daemons.values():
        assert not daemon.failover.unreachable

"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (figure, table, or prose
checkpoint), asserts the reproduction invariants, and reports timing via
pytest-benchmark.  Heavy DES-backed benchmarks use ``benchmark.pedantic``
with a single round so the whole harness stays in the minutes range;
analytic benchmarks let pytest-benchmark calibrate normally.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one measured round (for DES workloads)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run

"""``drs-experiments`` CLI: regenerate every paper artifact.

Usage::

    drs-experiments                      # run everything into ./results
    drs-experiments figure2 crossovers   # a subset
    drs-experiments --quick              # reduced iteration counts
    drs-experiments --quick --jobs 4     # sweeps fan out over 4 processes
    drs-experiments --out /tmp/results

The experiments come from the declarative registry in :mod:`repro.engine`:
each :mod:`repro.experiments.*` module registers an
:class:`~repro.engine.ExperimentSpec` with ``quick``/``full`` parameter
profiles, and sweep-style experiments decompose into independent jobs with
deterministic spawned seeds — so ``--jobs N`` changes wall time, never
results.

Every experiment also writes a run manifest (``<name>.manifest.json``) and a
metrics snapshot (``<name>.metrics.jsonl`` + ``.prom``) next to its results,
so ``results/`` directories are reproducible and diffable; disable with
``--no-metrics``.  Manifests record the engine backend, worker count, and
per-job seeds.  ``repro obs results/`` pretty-prints the artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import repro.experiments  # noqa: F401  — importing registers every ExperimentSpec
from repro.engine import experiment_specs, make_executor
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    ensure_core_metrics,
    install_profiling,
    use_registry,
    write_metrics_files,
)
from repro.obs.progress import ProgressReporter, set_heartbeat


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="drs-experiments",
        description="Regenerate the figures and tables of the DRS survivability paper.",
    )
    parser.add_argument("names", nargs="*", help="experiments to run (default: all)")
    parser.add_argument("--out", default="results", help="output directory (default: ./results)")
    parser.add_argument("--quick", action="store_true", help="reduced iteration counts")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep experiments (1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="override every seed-taking experiment's root seed",
    )
    parser.add_argument("--html", action="store_true", help="also write a combined results/index.html")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip per-experiment manifest + metrics snapshot artifacts",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="progress heartbeat interval on stderr (0 disables; default 10)",
    )
    args = parser.parse_args(argv)

    specs = experiment_specs()
    registry = {spec.name: spec for spec in specs}
    if args.list:
        for spec in specs:
            print(f"{spec.name:14s} {spec.description}" if spec.description else spec.name)
        return 0
    names = args.names or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}; have {', '.join(registry)}")
    try:
        executor = make_executor(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    profile = "quick" if args.quick else "full"
    out_dir = Path(args.out)
    results = []
    if not args.no_metrics:
        # Profile every simulator the experiments build internally; each
        # run() publishes into whichever registry is current at the time.
        install_profiling()
    for name in names:
        spec = registry[name]
        kwargs = spec.kwargs(profile)
        if args.seed is not None and spec.accepts_seed:
            kwargs["seed"] = args.seed
        if spec.parallel:
            kwargs["executor"] = executor
        started = time.perf_counter()
        print(f"[drs-experiments] running {name} ...", flush=True)
        metrics = ensure_core_metrics(MetricsRegistry())
        reporter = ProgressReporter(name, interval_s=args.heartbeat) if args.heartbeat > 0 else None
        set_heartbeat(reporter)
        try:
            with use_registry(metrics):
                result = spec.run(**kwargs)
        finally:
            set_heartbeat(None)
        results.append(result)
        files = result.write(out_dir)
        elapsed = time.perf_counter() - started
        if not args.no_metrics:
            manifest = RunManifest.build(
                name=name,
                kind="experiment",
                seed=result.meta.get("seed"),
                config={"quick": args.quick, **result.meta},
                wall_seconds=elapsed,
                event_count=int(metrics.counter("sim_events_total").value),
                heartbeat=reporter.summary() if reporter is not None else None,
                backend=executor.name if spec.parallel else "direct",
                workers=executor.workers if spec.parallel else 1,
            )
            manifest.write(out_dir / f"{name}.manifest.json")
            write_metrics_files(metrics, out_dir, name)
        print(result.render())
        print(f"[drs-experiments] {name} done in {elapsed:.1f}s -> {files[0]}", flush=True)
    if args.html:
        from repro.experiments.base import write_html_index

        index = write_html_index(results, out_dir)
        print(f"[drs-experiments] combined report -> {index}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

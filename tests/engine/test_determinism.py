"""End-to-end determinism: the CLI's outputs are backend-independent.

The acceptance property of the engine refactor — ``--jobs N`` may change
wall time, never bytes.  Quick ``figure2`` and ``availability`` runs under
the serial backend and a two-worker process pool must produce byte-identical
CSVs from the same root seed.
"""

from pathlib import Path

import pytest

from repro.experiments import availability, figure2, runner


def _csvs(out: Path) -> dict[str, bytes]:
    files = {p.name: p.read_bytes() for p in sorted(out.glob("*.csv"))}
    assert files, f"no CSVs written under {out}"
    return files


@pytest.mark.parametrize("name", ["figure2", "availability"])
def test_quick_csvs_identical_serial_vs_two_workers(tmp_path, name):
    serial, pooled = tmp_path / "serial", tmp_path / "pooled"
    assert runner.main(["--quick", "--no-metrics", "--out", str(serial), "--jobs", "1", name]) == 0
    assert runner.main(["--quick", "--no-metrics", "--out", str(pooled), "--jobs", "2", name]) == 0
    assert _csvs(serial) == _csvs(pooled)


def test_seed_changes_montecarlo_bytes(tmp_path):
    a = figure2.run(f_values=(2,), n_max=10, mc_iterations=500, seed=1)
    b = figure2.run(f_values=(2,), n_max=10, mc_iterations=500, seed=2)
    same = figure2.run(f_values=(2,), n_max=10, mc_iterations=500, seed=1)
    key = "sim f=2"
    assert a.series["montecarlo"].curves[key][1].tolist() == same.series["montecarlo"].curves[key][1].tolist()
    assert a.series["montecarlo"].curves[key][1].tolist() != b.series["montecarlo"].curves[key][1].tolist()


def test_figure2_curves_use_independent_streams():
    # regression for the old bug: one generator threaded through every curve
    # made each f-curve's draws depend on which curves ran before it.
    full = figure2.run(f_values=(2, 3), n_max=12, mc_iterations=500, seed=42)
    alone = figure2.run(f_values=(3,), n_max=12, mc_iterations=500, seed=42)
    key = "sim f=3"
    assert (
        full.series["montecarlo"].curves[key][1].tolist()
        == alone.series["montecarlo"].curves[key][1].tolist()
    )


def test_availability_weighted_table_backend_independent():
    serial = availability.run(mc_iterations=2_000, seed=5)
    pooled = availability.run(mc_iterations=2_000, seed=5, executor=_two_workers())
    assert serial.tables["weighted"].rows == pooled.tables["weighted"].rows


def _two_workers():
    from repro.engine import ParallelExecutor

    return ParallelExecutor(workers=2)

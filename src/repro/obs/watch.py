"""``repro obs watch``: a live ANSI dashboard over a flight-recorder stream.

The flight recorder (:mod:`repro.obs.flightrecorder`) appends every engine
lifecycle event to ``<out>/<name>.flight.jsonl`` with a per-line flush, so
the file is tailable while the run is still going.  This module turns that
stream into a terminal dashboard: per-worker state (which job, how many
done, retries), scheduler queue depth, jobs done/total with a progress bar,
trials/s and ETA from the heartbeat events, and the fault-tolerance tallies
(quarantines, timeouts, pool respawns, checkpoint records).

The pieces are deliberately separable so they test without a terminal:

* :class:`WatchState` — a pure reducer: ``apply(event)`` folds one event
  dict into the view model, ``to_dict()`` is the ``--json`` payload.
* :func:`render_watch` — view model to text; ``color=False`` gives a plain
  snapshot (what the renderer tests pin down).
* :func:`follow` — the tail loop: incremental reads (complete lines only,
  so a torn tail is simply "not yet"), repaint per interval, exit when the
  stream's ``run.end`` arrives or a ``--duration`` budget expires.

Parallel runs deliver worker-buffered events in chunk-sized bursts (the
workers cannot share the parent's sink), so per-worker rows advance at
chunk granularity; scheduler-side events (submissions, gauges, heartbeats)
are live to within one flush.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, TextIO

#: exit code when the watched stream never produced a ``run.end`` in budget
WATCH_EXIT_TIMEOUT = 4

RESET = "\x1b[0m"
BOLD = "\x1b[1m"
DIM = "\x1b[2m"
GREEN = "\x1b[32m"
YELLOW = "\x1b[33m"
RED = "\x1b[31m"
CYAN = "\x1b[36m"
CLEAR = "\x1b[2J\x1b[H"


@dataclass
class WorkerView:
    """What one process (worker or the serial coordinator) is doing."""

    pid: int
    state: str = "idle"  # "idle" | "running" | "exited"
    job: str | None = None
    jobs_done: int = 0
    retries: int = 0
    last_t: float = 0.0
    #: distributed workers only (from ``worker.join``); pool workers are
    #: always local, so their rows stay host-less
    host: str | None = None


@dataclass
class WatchState:
    """Pure event-fold view model of one flight-recorder stream."""

    experiment: str = ""
    backend: str = ""
    expected_workers: int = 0
    jobs_total: int | None = None
    total_trials: int | None = None
    jobs_submitted: int = 0
    jobs_done: int = 0
    jobs_resumed: int = 0
    quarantined: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    jobs_stolen: int = 0
    interrupted: bool = False
    checkpoint_records: int = 0
    checkpoint_compactions: int = 0
    last_checkpoint_job: str | None = None
    queue_depth: int | None = None
    utilization: float | None = None
    trials: int = 0
    trials_per_second: float = 0.0
    started_t: float | None = None
    last_t: float = 0.0
    events: int = 0
    finished: bool = False
    workers: dict[int, WorkerView] = field(default_factory=dict)
    #: latest ``stats.cell`` snapshot per Monte Carlo cell — keyed (n, f),
    #: or (topology, n, f) when the event carries a topology label
    cells: dict[tuple, dict[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------ fold
    def apply(self, event: Mapping[str, Any]) -> None:
        """Fold one flight event into the view (unknown kinds count only)."""
        kind = str(event.get("kind", "?"))
        t = float(event.get("t", 0.0))
        pid = int(event.get("pid", 0))
        self.events += 1
        if self.started_t is None:
            self.started_t = t
        self.last_t = max(self.last_t, t)
        if kind == "plan.begin":
            self.experiment = str(event.get("experiment", self.experiment))
            self.backend = str(event.get("backend", self.backend))
            self.expected_workers = int(event.get("workers", 0))
            self.jobs_total = event.get("jobs", self.jobs_total)
            if event.get("total_trials"):
                self.total_trials = int(event["total_trials"])
        elif kind == "job.submitted":
            self.jobs_submitted += 1
        elif kind == "job.resumed":
            self.jobs_resumed += 1
            self.jobs_done += 1
        elif kind == "job.attempt":
            worker = self._worker(pid, t)
            worker.state = "running"
            worker.job = str(event.get("job", "?"))
            worker.last_t = t
        elif kind == "job.retry":
            self.retries += 1
            self._worker(pid, t).retries += 1
        elif kind == "job.timeout":
            self.timeouts += 1
        elif kind in ("job.completed", "job.quarantined"):
            worker = self._worker(pid, t)
            worker.state = "idle"
            worker.job = None
            worker.jobs_done += 1
            worker.last_t = t
            self.jobs_done += 1
            if kind == "job.quarantined":
                self.quarantined += 1
        elif kind == "worker.spawn":
            self._worker(pid, t)
        elif kind == "worker.join":
            worker = self._worker(pid, t)
            if event.get("host"):
                worker.host = str(event["host"])
        elif kind in ("worker.exit", "worker.leave"):
            self._worker(pid, t).state = "exited"
        elif kind == "job.stolen":
            self.jobs_stolen += 1
        elif kind == "pool.respawn":
            self.pool_respawns = int(event.get("respawns", self.pool_respawns + 1))
        elif kind == "plan.interrupted":
            self.interrupted = True
        elif kind == "scheduler.gauge":
            self.queue_depth = int(event.get("queue_depth", 0))
            self.utilization = float(event.get("utilization", 0.0))
        elif kind == "checkpoint.write":
            self.checkpoint_records = int(event.get("records", self.checkpoint_records + 1))
            self.last_checkpoint_job = event.get("job")
        elif kind == "checkpoint.compact":
            self.checkpoint_compactions = int(
                event.get("compactions", self.checkpoint_compactions + 1)
            )
        elif kind == "heartbeat":
            self.trials = int(event.get("trials", self.trials))
            self.trials_per_second = float(event.get("trials_per_second", 0.0))
            if event.get("total"):
                self.total_trials = int(event["total"])
        elif kind == "stats.cell":
            n, f = int(event.get("n", -1)), int(event.get("f", -1))
            topology = event.get("topology")
            key = (n, f) if topology is None else (str(topology), n, f)
            self.cells[key] = {
                "n": n,
                "f": f,
                "topology": topology,
                "trials": int(event.get("trials", 0)),
                "half_width": float(event.get("half_width", 0.0)),
                "target": event.get("target"),
                "met": bool(event.get("met", False)),
                "done": bool(event.get("done", False)),
                "method": str(event.get("method", "wilson")),
            }
        elif kind == "run.end":
            self.finished = True

    def apply_all(self, events: Iterable[Mapping[str, Any]]) -> "WatchState":
        for event in events:
            self.apply(event)
        return self

    def _worker(self, pid: int, t: float) -> WorkerView:
        view = self.workers.get(pid)
        if view is None:
            view = self.workers[pid] = WorkerView(pid=pid, last_t=t)
        return view

    # --------------------------------------------------------------- derived
    @property
    def elapsed_s(self) -> float:
        return 0.0 if self.started_t is None else max(0.0, self.last_t - self.started_t)

    def eta_s(self) -> float | None:
        """Remaining seconds, from jobs throughput (None before it's known)."""
        if self.finished or self.jobs_total is None or self.jobs_done == 0:
            return None
        remaining = self.jobs_total - self.jobs_done
        if remaining <= 0 or self.elapsed_s <= 0:
            return 0.0 if remaining <= 0 else None
        return remaining * self.elapsed_s / self.jobs_done

    def precision_summary(self) -> dict[str, Any] | None:
        """Aggregate of the live per-cell precision, or None before any cell.

        ``worst`` is the cell with the widest current Wilson half-width —
        the estimate holding the sweep's quality back; ``at_target`` counts
        cells whose interval already meets the adaptive-stopping target
        (only populated when the run carries one).
        """
        if not self.cells:
            return None
        worst = max(self.cells.values(), key=lambda c: c["half_width"])
        targets = [c["target"] for c in self.cells.values() if c.get("target") is not None]
        worst_block = {
            "n": worst["n"],
            "f": worst["f"],
            "half_width": worst["half_width"],
            "trials": worst["trials"],
        }
        # legacy Wilson-interval events keep the payload shape exactly
        if worst.get("topology") is not None:
            worst_block["topology"] = worst["topology"]
        if worst.get("method", "wilson") != "wilson":
            worst_block["method"] = worst["method"]
        return {
            "cells": len(self.cells),
            "done": sum(c["done"] for c in self.cells.values()),
            "target": max(targets) if targets else None,
            "at_target": sum(c["met"] for c in self.cells.values()) if targets else None,
            "worst": worst_block,
        }

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable snapshot (the ``--json`` payload)."""
        return {
            "experiment": self.experiment,
            "backend": self.backend,
            "finished": self.finished,
            "events": self.events,
            "elapsed_s": round(self.elapsed_s, 3),
            "jobs": {
                "total": self.jobs_total,
                "submitted": self.jobs_submitted,
                "done": self.jobs_done,
                "resumed": self.jobs_resumed,
                "quarantined": self.quarantined,
            },
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_respawns": self.pool_respawns,
            "jobs_stolen": self.jobs_stolen,
            "interrupted": self.interrupted,
            "checkpoint_records": self.checkpoint_records,
            "queue_depth": self.queue_depth,
            "utilization": self.utilization,
            "trials": self.trials,
            "trials_per_second": self.trials_per_second,
            "total_trials": self.total_trials,
            "eta_s": None if self.eta_s() is None else round(self.eta_s(), 1),
            "precision": self.precision_summary(),
            "workers": {
                str(pid): {
                    "state": w.state,
                    "job": w.job,
                    "jobs_done": w.jobs_done,
                    "retries": w.retries,
                    **({"host": w.host} if w.host else {}),
                }
                for pid, w in sorted(self.workers.items())
            },
        }


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_watch(state: WatchState, color: bool = True) -> str:
    """Render one dashboard frame; ``color=False`` is the test-stable form."""

    def paint(text: str, *codes: str) -> str:
        if not color or not codes:
            return text
        return "".join(codes) + text + RESET

    if state.interrupted:
        status = paint("INTERRUPTED", BOLD, RED)
    elif state.finished:
        status = paint("DONE", BOLD, GREEN)
    elif state.events:
        status = paint("RUNNING", BOLD, YELLOW)
    else:
        status = paint("WAITING", DIM)
    backend = state.backend or "?"
    header = (
        f"{paint('flight', BOLD)}: {state.experiment or '?'} "
        f"({backend}, {state.expected_workers or len(state.workers) or '?'} worker(s))  [{status}]"
    )
    lines = [header]

    if state.jobs_total:
        fraction = state.jobs_done / state.jobs_total
        jobs_line = (
            f"jobs {_bar(fraction)} {state.jobs_done}/{state.jobs_total}"
            f" ({fraction:4.0%})"
        )
    else:
        jobs_line = f"jobs {state.jobs_done} done"
    extras = []
    if state.jobs_resumed:
        extras.append(f"{state.jobs_resumed} resumed")
    if state.queue_depth is not None:
        extras.append(f"queue {state.queue_depth}")
    if state.quarantined:
        extras.append(paint(f"quarantined {state.quarantined}", RED))
    if state.retries:
        extras.append(paint(f"retries {state.retries}", YELLOW))
    if state.timeouts:
        extras.append(f"timeouts {state.timeouts}")
    if state.jobs_stolen:
        extras.append(paint(f"stolen {state.jobs_stolen}", YELLOW))
    if state.pool_respawns:
        extras.append(paint(f"pool respawns {state.pool_respawns}", RED))
    if extras:
        jobs_line += "  " + " · ".join(extras)
    lines.append(jobs_line)

    trials_line = None
    if state.trials or state.total_trials:
        progress = (
            f"{state.trials:,}" if not state.total_trials
            else f"{state.trials:,}/{state.total_trials:,}"
        )
        trials_line = f"trials {progress}"
        if state.trials_per_second:
            trials_line += f" ({state.trials_per_second:,.0f}/s)"
    eta = state.eta_s()
    timing = f"elapsed {state.elapsed_s:.1f}s"
    if eta is not None:
        timing += f" · ETA {eta:,.0f}s"
    if state.utilization is not None:
        timing += f" · pool {state.utilization:4.0%} busy"
    lines.append((trials_line + " · " + timing) if trials_line else timing)

    precision = state.precision_summary()
    if precision is not None:
        worst = precision["worst"]
        where = f"n={worst['n']}, f={worst['f']}"
        if worst.get("topology"):
            where = f"{worst['topology']}, {where}"
        if worst.get("method"):
            where += f", {worst['method']}"
        ci_line = (
            f"ci: {precision['cells']} cell(s), worst half-width "
            f"{worst['half_width']:.2g} ({where}, {worst['trials']:,} trials)"
        )
        if precision["target"] is not None:
            at = precision["at_target"]
            badge = f"{at}/{precision['cells']} at target {precision['target']:g}"
            ci_line += "  " + (
                paint(badge, GREEN) if at == precision["cells"] else paint(badge, YELLOW)
            )
        lines.append(ci_line)

    for pid, worker in sorted(state.workers.items()):
        if worker.state == "running":
            doing = paint(f"running {worker.job}", CYAN)
        elif worker.state == "exited":
            doing = paint("exited", DIM)
        else:
            doing = "idle"
        # distributed workers carry a host label; pool workers keep the
        # exact pre-distributed row shape
        who = f"{pid}@{worker.host}" if worker.host else str(pid)
        row = f"  worker {who:<8} {doing:<40} {worker.jobs_done:>3} job(s)"
        if worker.retries:
            row += f", {worker.retries} retried"
        lines.append(row)

    if state.checkpoint_records:
        checkpoint_line = f"checkpoint: {state.checkpoint_records} record(s)"
        if state.last_checkpoint_job:
            checkpoint_line += f" · last {state.last_checkpoint_job}"
        if state.checkpoint_compactions:
            checkpoint_line += f" · {state.checkpoint_compactions} compaction(s)"
        lines.append(checkpoint_line)
    return "\n".join(lines)


def follow(
    path: str | Path,
    interval_s: float = 0.5,
    duration_s: float | None = None,
    once: bool = False,
    color: bool = True,
    as_json: bool = False,
    stream: TextIO | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail a flight JSONL and repaint the dashboard until the run ends.

    Returns 0 when the stream finished (``run.end`` observed, or ``once``),
    :data:`WATCH_EXIT_TIMEOUT` when a ``duration_s`` budget expired first.
    Only complete lines (newline-terminated) are consumed, so a writer
    mid-flush never produces a half-parsed frame.
    """
    path = Path(path)
    out = stream if stream is not None else sys.stdout
    state = WatchState()
    offset = 0
    buffered = ""
    deadline = None if duration_s is None else clock() + duration_s

    def drain_new_events() -> int:
        nonlocal offset, buffered
        if not path.exists():
            return 0
        with path.open("r") as fh:
            fh.seek(offset)
            chunk = fh.read()
            offset = fh.tell()
        if not chunk:
            return 0
        buffered += chunk
        lines = buffered.split("\n")
        buffered = lines.pop()  # tail with no newline yet: keep for next read
        applied = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "kind" in event:
                state.apply(event)
                applied += 1
        return applied

    def paint_frame() -> None:
        if as_json:
            print(json.dumps(state.to_dict()), file=out, flush=True)
        else:
            prefix = CLEAR if color and not once else ""
            print(prefix + render_watch(state, color=color), file=out, flush=True)

    while True:
        drain_new_events()
        if once or state.finished:
            paint_frame()
            return 0
        paint_frame()
        if deadline is not None and clock() >= deadline:
            return WATCH_EXIT_TIMEOUT
        sleep(interval_s)

"""Property-based tests (hypothesis) for the Monte Carlo failure sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import sample_failure_matrix


@st.composite
def valid_sampler_inputs(draw):
    """Arbitrary valid (n, f, iterations): f within [0, 2n+2]."""
    n = draw(st.integers(2, 40))
    f = draw(st.integers(0, 2 * n + 2))
    iterations = draw(st.integers(1, 200))
    return n, f, iterations


@settings(max_examples=60, deadline=None)
@given(args=valid_sampler_inputs(), seed=st.integers(0, 2**32 - 1))
def test_every_row_has_exactly_f_failures(args, seed):
    n, f, iterations = args
    failed = sample_failure_matrix(n, f, iterations, np.random.default_rng(seed))
    assert failed.shape == (iterations, 2 * n + 2)
    assert failed.dtype == np.bool_
    assert (failed.sum(axis=1) == f).all()


@settings(max_examples=30, deadline=None)
@given(args=valid_sampler_inputs(), seed=st.integers(0, 2**32 - 1))
def test_sampling_is_deterministic_for_a_seed(args, seed):
    n, f, iterations = args
    a = sample_failure_matrix(n, f, iterations, np.random.default_rng(seed))
    b = sample_failure_matrix(n, f, iterations, np.random.default_rng(seed))
    np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 40), iterations=st.integers(1, 50), seed=st.integers(0, 2**32 - 1))
def test_boundary_failure_counts(n, iterations, seed):
    rng = np.random.default_rng(seed)
    width = 2 * n + 2
    assert not sample_failure_matrix(n, 0, iterations, rng).any()
    assert sample_failure_matrix(n, width, iterations, rng).all()


@given(n=st.integers(-10, 1))
def test_too_small_n_raises(n):
    with pytest.raises(ValueError, match="n >= 2"):
        sample_failure_matrix(n, 1, 1, np.random.default_rng(0))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 40), delta=st.integers(1, 50))
def test_out_of_range_f_raises(n, delta):
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="f must be in"):
        sample_failure_matrix(n, -delta, 1, rng)
    with pytest.raises(ValueError, match="f must be in"):
        sample_failure_matrix(n, 2 * n + 2 + delta, 1, rng)


@given(n=st.integers(2, 40), iterations=st.integers(-5, 0))
def test_nonpositive_iterations_raises(n, iterations):
    with pytest.raises(ValueError, match="iterations must be >= 1"):
        sample_failure_matrix(n, 1, iterations, np.random.default_rng(0))

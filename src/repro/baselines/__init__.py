"""Baseline routing strategies DRS is compared against.

The paper positions DRS against "traditional routing systems" (RIP, OSPF,
EGP/BGP) whose "general design goal is based on reactively rerouting when a
specified timeout period has been reached."  Three baselines make that
comparison measurable on the same substrate:

* :mod:`~repro.baselines.static_tcp` — **no rerouting at all**: static
  routes, applications survive only what TCP retransmission can mask.
  Lower bound.
* :mod:`~repro.baselines.reactive` — **reactive rerouting**: no background
  probing; a route is only repaired after traffic to the peer has already
  failed for a timeout period (the RIP/IGRP-style design the paper
  contrasts with).  Uses the same dual-NIC failover mechanics as DRS, so
  the measured difference isolates *proactive vs reactive detection*.
* :mod:`~repro.baselines.distvector` — a **RIP-like distance-vector
  protocol** with periodic advertisements and route timeouts, for the
  fully-traditional comparison point.
* :mod:`~repro.baselines.linkstate` — an **OSPF-like link-state protocol**
  (hellos, sequence-numbered LSA flooding, SPF over the broadcast-segment
  pseudo-node graph); reactive with dead-interval detection.
"""

from repro.baselines.reactive import ReactiveConfig, ReactiveRouter, install_reactive
from repro.baselines.distvector import DistVectorConfig, DistVectorRouter, install_distvector
from repro.baselines.linkstate import LinkStateConfig, LinkStateRouter, install_linkstate
from repro.baselines.static_tcp import StaticOnlyDeployment, install_static_only

__all__ = [
    "ReactiveRouter",
    "ReactiveConfig",
    "install_reactive",
    "DistVectorRouter",
    "DistVectorConfig",
    "install_distvector",
    "LinkStateRouter",
    "LinkStateConfig",
    "install_linkstate",
    "StaticOnlyDeployment",
    "install_static_only",
]

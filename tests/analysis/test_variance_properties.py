"""Property-based tests (hypothesis) for the variance-reduction layer.

Three families of invariants:

* trial allocation — largest-remainder apportionment conserves the budget,
  floors every sampled stratum at one trial, and starves zero-score strata;
* conditional sampling — every row of the hub-conditional sampler is a
  valid member of its stratum's family, and the closed-form conditional
  success probabilities agree with exhaustive enumeration at n = 2, 3 for
  every f and stratum;
* kernel equivalences — the NIC-only level kernels agree with
  ``pair_connected_vec`` at every f over the same draw, and the padded
  full-grid pass is float-identical to per-N ``simulate_grid`` runs on any
  (N, f)-subset slice for every estimator method.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    hub_stratum_weights,
    simulate_full_grid,
    simulate_grid,
    success_probability,
)
from repro.analysis.montecarlo import pair_connected_vec
from repro.analysis.variance import (
    allocate_stratum_trials,
    both_hubs_up_conditional_success,
    endpoint_dead_levels,
    nic_connectivity_levels,
    one_hub_conditional_success,
    sample_conditional_failure_matrix,
)


# ------------------------------------------------------- trial allocation


@st.composite
def allocation_inputs(draw):
    """A budget and a score vector with at least one positive entry."""
    scores = draw(
        st.lists(st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False), min_size=1, max_size=8)
    )
    if not any(s > 0 for s in scores):
        scores[draw(st.integers(0, len(scores) - 1))] = 1.0
    positive = sum(1 for s in scores if s > 0)
    total = draw(st.integers(positive, positive + 10_000))
    return total, scores


@settings(max_examples=200, deadline=None)
@given(args=allocation_inputs())
def test_allocations_conserve_the_budget(args):
    total, scores = args
    allocations = allocate_stratum_trials(total, scores)
    assert len(allocations) == len(scores)
    assert sum(allocations) == total
    for allocation, score in zip(allocations, scores):
        assert allocation >= 0
        if score > 0:
            assert allocation >= 1  # a sampled stratum never gets zero trials
        else:
            assert allocation == 0  # an impossible stratum never costs a trial


@settings(max_examples=50, deadline=None)
@given(
    scores=st.lists(st.floats(0.01, 100.0, allow_nan=False), min_size=2, max_size=5),
    total=st.integers(100, 10_000),
)
def test_allocations_track_score_proportions(scores, total):
    allocations = allocate_stratum_trials(total, scores)
    weight_sum = sum(scores)
    remainder = total - len(scores)  # after the one-trial-per-stratum floor
    for allocation, score in zip(allocations, scores):
        # largest-remainder rounding stays within one trial of the floor
        # plus the proportional share of what the floor left over
        assert abs(allocation - (1 + remainder * score / weight_sum)) <= 1.0


# ---------------------------------------------------- conditional sampling


@st.composite
def conditional_inputs(draw):
    """Valid (n, f, stratum, iterations) for the hub-conditional sampler."""
    n = draw(st.integers(2, 30))
    stratum = draw(st.integers(0, 2))
    f = draw(st.integers(stratum, 2 * n + stratum))
    iterations = draw(st.integers(1, 100))
    return n, f, stratum, iterations


@settings(max_examples=80, deadline=None)
@given(args=conditional_inputs(), seed=st.integers(0, 2**32 - 1))
def test_every_conditional_row_is_in_its_stratum(args, seed):
    n, f, stratum, iterations = args
    failed = sample_conditional_failure_matrix(
        n, f, stratum, iterations, rng=np.random.default_rng(seed)
    )
    assert failed.shape == (iterations, 2 * n + 2)
    assert failed.dtype == np.bool_
    assert (failed.sum(axis=1) == f).all()
    assert (failed[:, :2].sum(axis=1) == stratum).all()
    assert (failed[:, 2:].sum(axis=1) == f - stratum).all()


@settings(max_examples=40, deadline=None)
@given(args=conditional_inputs(), seed=st.integers(0, 2**32 - 1))
def test_conditional_sampling_is_deterministic_for_a_seed(args, seed):
    n, f, stratum, iterations = args
    a = sample_conditional_failure_matrix(n, f, stratum, iterations, seed=seed)
    b = sample_conditional_failure_matrix(n, f, stratum, iterations, seed=seed)
    np.testing.assert_array_equal(a, b)


def _conditional_oracle(n: int, f: int, stratum: int, two_hop: bool) -> float:
    """Exhaustive conditional success: every failure set in the stratum."""
    width = 2 * n + 2
    rows = []
    for hubs in itertools.combinations(range(2), stratum):
        for nics in itertools.combinations(range(2, width), f - stratum):
            row = np.zeros(width, dtype=bool)
            row[list(hubs)] = True
            row[list(nics)] = True
            rows.append(row)
    survived = pair_connected_vec(np.array(rows), two_hop=two_hop)
    return float(survived.mean())


@pytest.mark.parametrize("n", [2, 3])
@pytest.mark.parametrize("two_hop", [True, False])
def test_closed_form_conditionals_match_exhaustive_oracle(n, two_hop):
    width = 2 * n + 2
    for f in range(0, width + 1):
        for stratum in range(0, 3):
            if f - stratum < 0 or f - stratum > 2 * n:
                continue
            oracle = _conditional_oracle(n, f, stratum, two_hop)
            if stratum == 2:
                assert oracle == 0.0, (f, stratum)
            elif stratum == 1:
                # one hub down disables the two-hop repair entirely, so the
                # closed form is two_hop-independent
                assert oracle == pytest.approx(one_hub_conditional_success(n, f), abs=1e-12)
            else:
                assert oracle == pytest.approx(
                    both_hubs_up_conditional_success(n, f, two_hop=two_hop), abs=1e-12
                ), (f, stratum)


@pytest.mark.parametrize("n", [2, 3])
def test_stratum_decomposition_reassembles_equation1_exhaustively(n):
    for f in range(0, 2 * n + 3):
        weights = hub_stratum_weights(n, f)
        total = sum(
            w * _conditional_oracle(n, f, j, True)
            for j, w in enumerate(weights)
            if w > 0
        )
        assert total == pytest.approx(success_probability(n, f), abs=1e-12), f


# ----------------------------------------------------- kernel equivalences


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), two_hop=st.booleans(), seed=st.integers(0, 2**32 - 1))
def test_nic_levels_agree_with_pair_connected_vec_at_every_f(n, two_hop, seed):
    rng = np.random.default_rng(seed)
    keys = rng.random((200, 2 * n))
    ranks = np.argsort(np.argsort(keys, axis=1), axis=1)
    levels = nic_connectivity_levels(keys, two_hop=two_hop)
    dead_levels = endpoint_dead_levels(keys)
    for f in range(0, 2 * n + 1):
        failed = np.zeros((200, 2 * n + 2), dtype=bool)
        failed[:, 2:] = ranks < f  # both hubs stay up: the stratum-0 world
        expected = pair_connected_vec(failed, two_hop=two_hop)
        np.testing.assert_array_equal(levels >= f, expected)
        dead = (failed[:, 2] & failed[:, 3]) | (failed[:, 4] & failed[:, 5])
        np.testing.assert_array_equal(dead_levels < f, dead)


@st.composite
def full_grid_inputs(draw):
    """A random (N, f)-subset of the small grid plus an estimator method."""
    ns = tuple(sorted(draw(st.sets(st.integers(4, 12), min_size=1, max_size=4))))
    fs = tuple(sorted(draw(st.sets(st.integers(0, 6), min_size=1, max_size=4))))
    method = draw(st.sampled_from(["crn", "stratified", "stratified-cv"]))
    iterations = draw(st.integers(50, 300))
    return ns, fs, method, iterations


@settings(max_examples=40, deadline=None)
@given(args=full_grid_inputs(), seed=st.integers(0, 2**31 - 1))
def test_padded_full_grid_slices_equal_per_n_runs(args, seed):
    ns, fs, method, iterations = args
    grid = simulate_full_grid(ns, fs, iterations, seed=seed, method=method)
    for n in ns:
        solo = simulate_grid(n, fs, iterations, seed=seed, method=method)
        assert grid[n] == solo, (method, n)

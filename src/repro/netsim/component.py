"""Failable components: the universe the survivability model counts over.

Every hardware element the paper's probability model considers — the 2N NICs
and the 2 backplanes — derives from :class:`Component`: a named object with
an up/down state, fail/repair transitions, and state-change listeners (the
fault injector and the trace recorder hook in here).
"""

from __future__ import annotations

import enum
from typing import Callable


class ComponentKind(enum.Enum):
    """Which hardware class a component belongs to (for failure statistics)."""

    NIC = "nic"
    HUB = "hub"


class Component:
    """Base class for anything that can fail.

    State transitions are idempotent: failing a failed component is a no-op
    and does not re-notify listeners.
    """

    def __init__(self, name: str, kind: ComponentKind) -> None:
        self.name = name
        self.kind = kind
        self._up = True
        self._listeners: list[Callable[["Component", bool], None]] = []
        self.fail_count = 0
        self.repair_count = 0

    @property
    def up(self) -> bool:
        """True while the component is operational."""
        return self._up

    def on_state_change(self, listener: Callable[["Component", bool], None]) -> None:
        """Register ``listener(component, up)`` for future transitions."""
        self._listeners.append(listener)

    def fail(self) -> bool:
        """Take the component down. Returns True if the state changed."""
        if not self._up:
            return False
        self._up = False
        self.fail_count += 1
        self._notify()
        return True

    def repair(self) -> bool:
        """Bring the component back up. Returns True if the state changed."""
        if self._up:
            return False
        self._up = True
        self.repair_count += 1
        self._notify()
        return True

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self, self._up)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._up else "DOWN"
        return f"<{type(self).__name__} {self.name} {state}>"

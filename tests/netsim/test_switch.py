"""Tests for the switched-fabric substrate."""

import pytest

from repro.netsim import Frame, InterfaceAddr, Nic, Switch, build_dual_switched_cluster
from repro.netsim.addresses import broadcast_addr
from repro.protocols import install_stacks
from repro.simkit import Simulator


class _Payload:
    def __init__(self, size_bytes=28):
        self.size_bytes = size_bytes


def _rig(n=3, **kw):
    sim = Simulator()
    sw = Switch(sim, network_id=0, **kw)
    nics, received = [], []
    for i in range(n):
        nic = Nic(InterfaceAddr(i, 0), sw)
        nic.set_receiver(lambda f, nic, i=i: received.append((sim.now, i, f)))
        nics.append(nic)
    return sim, sw, nics, received


def test_unknown_unicast_floods_then_learns():
    sim, sw, nics, received = _rig()
    nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload()))
    sim.run()
    # flooded, but only the addressed NIC consumed it
    assert [who for _, who, _ in received] == [1]
    assert sw.frames_flooded.value == 1
    assert sw.mac_table == {0: 0}
    # reply: destination 0 is now learned, no flood
    nics[1].send(Frame(nics[1].addr, nics[0].addr, "t", _Payload()))
    sim.run()
    assert sw.frames_flooded.value == 1
    assert sw.mac_table == {0: 0, 1: 1}


def test_store_and_forward_latency():
    sim, sw, nics, received = _rig(switching_delay_s=10e-6, prop_delay_s=5e-6)
    nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload(28)))
    sim.run()
    t = received[0][0]
    tx = 84 * 8 / 100e6
    # ingress serialization + switching + egress serialization + propagation
    assert t == pytest.approx(tx + 10e-6 + tx + 5e-6)


def test_broadcast_reaches_all_but_sender():
    sim, sw, nics, received = _rig(n=4)
    nics[2].send(Frame(nics[2].addr, broadcast_addr(0), "t", _Payload()))
    sim.run()
    assert sorted(who for _, who, _ in received) == [0, 1, 3]


def test_parallel_ports_do_not_contend():
    # two disjoint flows at line rate: on a hub they would serialize, on a
    # switch they complete in parallel
    sim, sw, nics, received = _rig(n=4)
    # teach the switch all ports first
    for nic in nics:
        nic.send(Frame(nic.addr, broadcast_addr(0), "t", _Payload()))
    sim.run()
    received.clear()
    start = sim.now
    big = _Payload(10_000)
    for _ in range(10):
        nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", big))
        nics[2].send(Frame(nics[2].addr, nics[3].addr, "t", big))
    sim.run()
    elapsed = sim.now - start
    one_flow = 10 * (10_038 * 8 / 100e6)
    # both flows finish in roughly one flow's serialization time (+pipeline)
    assert elapsed < one_flow * 1.3
    assert len(received) == 20


def test_switch_down_drops():
    sim, sw, nics, received = _rig()
    sw.fail()
    nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload()))
    sim.run()
    assert received == [] and sw.frames_dropped.value == 1


def test_switch_dies_in_flight():
    sim, sw, nics, received = _rig()
    nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload()))
    sim.schedule(1e-9, sw.fail)
    sim.run()
    assert received == []


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Switch(sim, 0, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Switch(sim, 0, switching_delay_s=-1)
    sw = Switch(sim, 0)
    Nic(InterfaceAddr(0, 0), sw)
    with pytest.raises(ValueError):
        Nic(InterfaceAddr(0, 0), sw)
    with pytest.raises(ValueError):
        build_dual_switched_cluster(sim, 1)


def test_switched_cluster_runs_drs_end_to_end():
    from repro.drs import install_drs
    from tests.drs.conftest import FAST, routed_ping_ok

    sim = Simulator()
    cluster = build_dual_switched_cluster(sim, 5)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    assert stacks[0].table.lookup(1).network == 1
    assert routed_ping_ok(sim, stacks, 0, 1)
    # switch failure behaves like hub failure (shared component)
    cluster.faults.fail("switch1")
    sim.run(until=sim.now + 2.0)
    # node 1 is now crossed (nic1.0 dead, switch1 dead): two-hop impossible
    # since every path to 1 needs switch1; unreachable, as Equation 1 says
    assert not routed_ping_ok(sim, stacks, 0, 1)


def test_component_universe_names_switches():
    sim = Simulator()
    cluster = build_dual_switched_cluster(sim, 2)
    names = [c.name for c in cluster.faults.components]
    assert names[:2] == ["switch0", "switch1"]

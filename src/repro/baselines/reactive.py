"""Baseline 1: reactive rerouting — detect by timeout, then repair.

This models the design philosophy the paper contrasts DRS with: "wait for a
failure to occur and then react by finding an alternative route … if a
destination network does not respond to a route query, after some time
quantum, it is considered down and a new route is sought after."

The router issues slow routed *route queries* (not per-link probes) on a
RIP-like cadence.  Only after a peer has failed queries continuously for
``timeout_s`` does repair begin — and repair then probes the redundant link
and, failing that, broadcasts for a volunteer router that performs an
*on-demand* check of its own link to the target (reactive end to end).

The repair mechanics deliberately mirror DRS so that benchmark differences
isolate the paper's actual claim: proactive detection beats reactive
detection, not "DRS has a better repair path."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.drs.messages import (
    DISCOVERY_REQUEST_BYTES,
    INSTALL_ACK_BYTES,
    INSTALL_REQUEST_BYTES,
    ROUTE_OFFER_BYTES,
    DiscoveryRequest,
    InstallAck,
    RouteInstallRequest,
    RouteOffer,
)
from repro.netsim.addresses import NetworkId, NodeId
from repro.netsim.topology import Cluster
from repro.protocols.icmp import PingResult, PingStatus
from repro.protocols.routing import Route, RouteSource
from repro.protocols.stack import HostStack
from repro.simkit import Counter, Process, Simulator, TraceRecorder

#: Well-known UDP port for the reactive baseline's control plane.
REACTIVE_PORT = 1113

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class ReactiveConfig:
    """Timing of the reactive baseline (classic RIP is 30 s / 180 s)."""

    query_interval_s: float = 3.0
    timeout_s: float = 9.0
    probe_timeout_s: float = 0.02
    discovery_timeout_s: float = 0.05

    def __post_init__(self) -> None:
        if self.query_interval_s <= 0 or self.timeout_s <= 0:
            raise ValueError("query_interval_s and timeout_s must be positive")
        if self.timeout_s < self.query_interval_s:
            raise ValueError("timeout_s must be >= query_interval_s")


@dataclass
class _Repair:
    target: NodeId
    detected_at: float
    request_id: int = -1
    direct_results: dict[NetworkId, bool] = field(default_factory=dict)
    offers: list[RouteOffer] = field(default_factory=list)
    settled: bool = False


class ReactiveRouter:
    """One node's reactive routing agent."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        peers: list[NodeId],
        config: ReactiveConfig,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.config = config
        self.trace = trace
        self.peers = [p for p in peers if p != stack.node.node_id]
        self._failing_since: dict[NodeId, float] = {}
        self._repairs_active: dict[NodeId, _Repair] = {}
        self._proc: Process | None = None
        self.repairs = Counter(f"reactive{stack.node.node_id}.repairs")
        self.queries = Counter(f"reactive{stack.node.node_id}.queries")
        self.failed_repairs = Counter(f"reactive{stack.node.node_id}.failed_repairs")
        stack.udp.bind(REACTIVE_PORT, self._on_control)

    @property
    def owner(self) -> NodeId:
        """The node this router runs on."""
        return self.stack.node.node_id

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the periodic route-query loop."""
        if self._proc is None or self._proc.finished:
            self._proc = Process(self.sim, self._query_loop(), name=f"reactive{self.owner}")

    def stop(self) -> None:
        """Stop querying (control handlers stay registered)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _query_loop(self):
        if not self.peers:
            return
        gap = self.config.query_interval_s / len(self.peers)
        yield (self.owner * gap) % self.config.query_interval_s
        while True:
            for peer in self.peers:
                self._query(peer)
                yield gap

    # ------------------------------------------------------------------ query
    def _query(self, peer: NodeId) -> None:
        self.queries.add()
        self.stack.icmp.ping(peer, timeout_s=self.config.probe_timeout_s, callback=self._on_query_result)

    def _on_query_result(self, result: PingResult) -> None:
        peer = result.dst_node
        if result.status is PingStatus.REPLY:
            self._failing_since.pop(peer, None)
            return
        first = self._failing_since.setdefault(peer, self.sim.now)
        if self.sim.now - first >= self.config.timeout_s and peer not in self._repairs_active:
            # Timeout quantum reached: the peer is considered down; react.
            if self.trace is not None:
                self.trace.record("reactive-detect", node=self.owner, peer=peer, failing_since=first)
            self._start_repair(peer, detected_at=first)

    # ----------------------------------------------------------------- repair
    def _start_repair(self, target: NodeId, detected_at: float) -> None:
        repair = _Repair(target=target, detected_at=detected_at)
        self._repairs_active[target] = repair
        # Check both direct links; install the first that answers.
        for net in self.stack.node.networks:
            self.stack.icmp.ping_direct(
                net,
                target,
                timeout_s=self.config.probe_timeout_s,
                callback=lambda res, r=repair: self._on_direct_check(r, res),
            )

    def _on_direct_check(self, repair: _Repair, result: PingResult) -> None:
        if repair.settled:
            return
        network = result.network
        ok = result.status is PingStatus.REPLY
        repair.direct_results[network] = ok
        if ok:
            self._install_direct(repair, network)
            return
        if len(repair.direct_results) == len(self.stack.node.networks):
            self._start_discovery(repair)

    def _install_direct(self, repair: _Repair, network: NetworkId) -> None:
        repair.settled = True
        self._repairs_active.pop(repair.target, None)
        self._failing_since.pop(repair.target, None)
        self.stack.table.install(
            Route(
                dst=repair.target,
                network=network,
                next_hop=repair.target,
                source=RouteSource.REACTIVE,
                installed_at=self.sim.now,
            )
        )
        self.repairs.add()
        if self.trace is not None:
            self.trace.record(
                "reactive-repair",
                node=self.owner,
                peer=repair.target,
                kind="direct-swap",
                network=network,
                detected_at=repair.detected_at,
                repair_latency=self.sim.now - repair.detected_at,
            )

    # -------------------------------------------------------------- discovery
    def _start_discovery(self, repair: _Repair) -> None:
        repair.request_id = next(_request_ids)
        request = DiscoveryRequest(origin=self.owner, target=repair.target, request_id=repair.request_id)
        sent_any = False
        for net in self.stack.node.networks:
            if self.stack.udp.broadcast(net, REACTIVE_PORT, data=request, data_bytes=DISCOVERY_REQUEST_BYTES):
                sent_any = True
        if not sent_any:
            self._settle_failure(repair)
            return
        self.sim.schedule(self.config.discovery_timeout_s, lambda: self._on_discovery_timeout(repair))

    def _on_discovery_timeout(self, repair: _Repair) -> None:
        if repair.settled:
            return
        if repair.offers:
            self._install_via(repair, min(repair.offers, key=lambda o: o.router))
        else:
            self._settle_failure(repair)

    def _settle_failure(self, repair: _Repair) -> None:
        repair.settled = True
        self._repairs_active.pop(repair.target, None)
        # keep the failure clock running: the next query retriggers repair
        self._failing_since.pop(repair.target, None)
        self.failed_repairs.add()
        if self.trace is not None:
            self.trace.record("reactive-unreachable", node=self.owner, peer=repair.target)

    def _install_via(self, repair: _Repair, offer: RouteOffer) -> None:
        repair.settled = True
        self._repairs_active.pop(repair.target, None)
        self._failing_since.pop(repair.target, None)
        request = RouteInstallRequest(
            origin=self.owner, target=repair.target, request_id=offer.request_id, leg2_network=offer.leg2_network
        )
        self.stack.udp.send(offer.router, REACTIVE_PORT, data=request, data_bytes=INSTALL_REQUEST_BYTES)
        leg1 = next((n for n in self.stack.node.networks if n != offer.leg2_network), self.stack.node.networks[0])
        self.stack.table.install(
            Route(
                dst=repair.target,
                network=leg1,
                next_hop=offer.router,
                source=RouteSource.REACTIVE,
                metric=2,
                installed_at=self.sim.now,
            )
        )
        self.repairs.add()
        if self.trace is not None:
            self.trace.record(
                "reactive-repair",
                node=self.owner,
                peer=repair.target,
                kind="two-hop",
                router=offer.router,
                detected_at=repair.detected_at,
                repair_latency=self.sim.now - repair.detected_at,
            )

    # ------------------------------------------------------------ control plane
    def _on_control(self, dgram, src_node: NodeId, arrived_on: NetworkId) -> None:
        msg = dgram.data
        if isinstance(msg, DiscoveryRequest) and msg.origin != self.owner:
            self._answer_discovery(msg, arrived_on)
        elif isinstance(msg, RouteOffer):
            repair = self._repairs_active.get(msg.target)
            if repair is not None and not repair.settled and msg.request_id == repair.request_id:
                repair.offers.append(msg)
                self._install_via(repair, msg)
        elif isinstance(msg, RouteInstallRequest) and msg.target != self.owner:
            self.stack.table.install(
                Route(
                    dst=msg.target,
                    network=msg.leg2_network,
                    next_hop=msg.target,
                    source=RouteSource.REACTIVE,
                    installed_at=self.sim.now,
                )
            )
            self.stack.udp.send(msg.origin, REACTIVE_PORT, data=InstallAck(self.owner, msg.target, msg.request_id), data_bytes=INSTALL_ACK_BYTES)

    def _answer_discovery(self, msg: DiscoveryRequest, arrived_on: NetworkId) -> None:
        if msg.target == self.owner:
            offer = RouteOffer(router=self.owner, target=self.owner, request_id=msg.request_id, leg2_network=arrived_on)
            self.stack.udp.send_direct(arrived_on, msg.origin, REACTIVE_PORT, data=offer, data_bytes=ROUTE_OFFER_BYTES)
            return
        # Reactive volunteer: check our link to the target on demand, then offer.
        for net in self.stack.node.networks:
            if net == arrived_on:
                continue

            def on_check(result: PingResult, net=net) -> None:
                if result.status is PingStatus.REPLY:
                    offer = RouteOffer(router=self.owner, target=msg.target, request_id=msg.request_id, leg2_network=net)
                    self.stack.udp.send_direct(arrived_on, msg.origin, REACTIVE_PORT, data=offer, data_bytes=ROUTE_OFFER_BYTES)

            self.stack.icmp.ping_direct(net, msg.target, timeout_s=self.config.probe_timeout_s, callback=on_check)


@dataclass
class ReactiveDeployment:
    """All reactive routers of one cluster."""

    config: ReactiveConfig
    routers: dict[int, ReactiveRouter]

    def start(self) -> None:
        """Start every router."""
        for router in self.routers.values():
            router.start()

    def stop(self) -> None:
        """Stop every router."""
        for router in self.routers.values():
            router.stop()

    def total_repairs(self) -> int:
        """Cluster-wide successful repairs."""
        return sum(int(r.repairs.value) for r in self.routers.values())


def install_reactive(
    cluster: Cluster,
    stacks: dict[int, HostStack],
    config: ReactiveConfig | None = None,
    start: bool = True,
) -> ReactiveDeployment:
    """Install (and by default start) a reactive router on every node."""
    if config is None:
        config = ReactiveConfig()
    node_ids = [node.node_id for node in cluster.nodes]
    routers = {
        nid: ReactiveRouter(cluster.sim, stacks[nid], node_ids, config, trace=cluster.trace)
        for nid in node_ids
    }
    deployment = ReactiveDeployment(config=config, routers=routers)
    if start:
        deployment.start()
    return deployment

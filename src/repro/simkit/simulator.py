"""The simulation event loop."""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Callable

from repro.simkit.errors import ScheduleInPastError
from repro.simkit.events import Event, EventQueue


class SimProfile:
    """Wall-clock accounting of one simulator's event loop.

    Tracks events fired, callback time by category (defaulting to the
    defining module of each callback), and total time inside :meth:`run`,
    from which events/sec falls out.  ``drain_deltas`` supports incremental
    publication into a metrics registry across repeated ``run`` calls.
    """

    __slots__ = ("events", "callback_seconds", "run_seconds", "by_category", "_published")

    def __init__(self) -> None:
        self.events = 0
        self.callback_seconds = 0.0
        self.run_seconds = 0.0
        #: category -> [events, callback seconds]
        self.by_category: dict[str, list] = {}
        self._published = [0, 0.0, 0.0, {}]

    def record(self, category: str, seconds: float) -> None:
        """Account one fired event."""
        self.events += 1
        self.callback_seconds += seconds
        slot = self.by_category.get(category)
        if slot is None:
            self.by_category[category] = [1, seconds]
        else:
            slot[0] += 1
            slot[1] += seconds

    def events_per_second(self) -> float:
        """Throughput over all :meth:`Simulator.run` wall time so far."""
        return self.events / self.run_seconds if self.run_seconds > 0 else 0.0

    def drain_deltas(self) -> dict[str, Any]:
        """What changed since the last drain (for incremental publication)."""
        pub_events, pub_cb, pub_run, pub_cat = self._published
        deltas = {
            "events": self.events - pub_events,
            "callback_seconds": self.callback_seconds - pub_cb,
            "run_seconds": self.run_seconds - pub_run,
            "by_category": {},
        }
        for category, (n, secs) in self.by_category.items():
            seen_n, seen_s = pub_cat.get(category, (0, 0.0))
            if n != seen_n or secs != seen_s:
                deltas["by_category"][category] = (n - seen_n, secs - seen_s)
        self._published = [
            self.events,
            self.callback_seconds,
            self.run_seconds,
            {c: tuple(v) for c, v in self.by_category.items()},
        ]
        return deltas

    def summary_rows(self) -> list[list]:
        """Per-category rows (category, events, seconds, share) for tables."""
        total = self.callback_seconds or 1.0
        rows = [
            [category, n, secs, secs / total]
            for category, (n, secs) in sorted(
                self.by_category.items(), key=lambda kv: kv[1][1], reverse=True
            )
        ]
        return rows


def _default_categorize(callback: Callable[[], Any]) -> str:
    module = getattr(callback, "__module__", None)
    if module is None:
        func = getattr(callback, "func", None)  # functools.partial
        module = getattr(func, "__module__", None)
    return module.rsplit(".", 1)[-1] if module else "uncategorized"


#: when True, every new Simulator starts with profiling enabled and reports
#: into _PROFILE_SINK after each run() — set by repro.obs, never imported here
_AUTO_PROFILE = False
_PROFILE_SINK: Callable[[SimProfile], None] | None = None


def set_auto_profile(enabled: bool, sink: Callable[[SimProfile], None] | None = None) -> None:
    """Globally profile every subsequently created :class:`Simulator`.

    ``sink`` (if given) is invoked with the profile after each ``run()``;
    the observability layer uses this to publish into the current metrics
    registry without simkit depending on it.
    """
    global _AUTO_PROFILE, _PROFILE_SINK
    _AUTO_PROFILE = enabled
    _PROFILE_SINK = sink if enabled else None


class Simulator:
    """Deterministic discrete-event simulator.

    The simulator owns the clock and the pending-event queue.  All model
    components (NICs, hubs, protocol daemons) schedule work through it and
    never advance time themselves.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._profile: SimProfile | None = SimProfile() if _AUTO_PROFILE else None
        self._categorize: Callable[[Callable[[], Any]], str] = _default_categorize

    # -------------------------------------------------------------- profiling
    @property
    def profile(self) -> SimProfile | None:
        """Event-loop accounting, or ``None`` while profiling is off."""
        return self._profile

    def enable_profiling(
        self, categorize: Callable[[Callable[[], Any]], str] | None = None
    ) -> SimProfile:
        """Start (or continue) wall-clock accounting of the event loop.

        ``categorize`` maps a callback to a bucket name; the default buckets
        by the callback's defining module (``icmp``, ``monitor``, ...).
        """
        if categorize is not None:
            self._categorize = categorize
        if self._profile is None:
            self._profile = SimProfile()
        return self._profile

    def disable_profiling(self) -> None:
        """Stop accounting; the accumulated profile is discarded."""
        self._profile = None

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(self, when: float, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Raises
        ------
        ScheduleInPastError
            If ``when`` is before the current time or not a finite number.
        """
        if not math.isfinite(when):
            raise ScheduleInPastError(self._now, when)
        if when < self._now:
            raise ScheduleInPastError(self._now, when)
        return self._queue.push(when, callback, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (safe to call twice)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Fire the single earliest event.  Return ``False`` if none remain."""
        if not self._queue:
            return False
        ev = self._queue.pop()
        self._now = ev.time
        prof = self._profile
        if prof is None:
            ev.callback()
        else:
            started = perf_counter()
            ev.callback()
            prof.record(self._categorize(ev.callback), perf_counter() - started)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget spent.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time, and advance the clock exactly to ``until``.
        max_events:
            Safety valve for runaway models; stop after firing this many.
        """
        self._running = True
        self._stopped = False
        fired = 0
        prof = self._profile
        run_started = perf_counter() if prof is not None else 0.0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and fired >= max_events:
                    return
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = until
                    return
                self.step()
                fired += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
            if prof is not None:
                prof.run_seconds += perf_counter() - run_started
                if _PROFILE_SINK is not None:
                    _PROFILE_SINK(prof)

    def stop(self) -> None:
        """Stop :meth:`run` after the currently firing event returns."""
        self._stopped = True

"""``repro obs``: pretty-print observability artifacts.

Usage::

    python -m repro obs results/                 # everything in a directory
    python -m repro obs results/figure2.manifest.json
    python -m repro obs /tmp/r/nic.metrics.jsonl /tmp/r/nic.trace.jsonl

Dispatches on artifact suffix: ``*.manifest.json`` (run provenance),
``*.metrics.jsonl`` / ``*.metrics.prom`` (registry snapshots), and
``*.trace.jsonl`` (event traces, summarized by category).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter as TallyCounter
from pathlib import Path

from repro.obs.artifacts import load_manifest
from repro.viz import metrics_summary_table, render_table

ARTIFACT_GLOBS = ("*.manifest.json", "*.metrics.jsonl", "*.metrics.prom", "*.trace.jsonl")


def _render_manifest(path: Path) -> str:
    manifest = load_manifest(path)
    rows = [
        ["name", manifest.name],
        ["kind", manifest.kind],
        ["seed", manifest.seed if manifest.seed is not None else "-"],
        ["config hash", manifest.config_hash],
        ["wall seconds", manifest.wall_seconds],
        ["event count", manifest.event_count],
        ["package version", manifest.package_version],
        ["python", manifest.python],
        ["schema version", manifest.schema_version],
    ]
    for key, value in sorted(manifest.extra.items()):
        rows.append([key, value])
    config = json.dumps(manifest.config, sort_keys=True, default=str)
    if len(config) > 100:
        config = config[:97] + "..."
    rows.append(["config", config])
    return render_table(["field", "value"], rows, title=f"manifest: {path.name}")


def _render_metrics_jsonl(path: Path) -> str:
    snapshot = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
    return metrics_summary_table(snapshot, title=f"metrics: {path.name}")


def _render_trace_jsonl(path: Path) -> str:
    tally: TallyCounter = TallyCounter()
    first: dict[str, float] = {}
    last: dict[str, float] = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        category = row.get("category", "?")
        tally[category] += 1
        t = float(row.get("time", 0.0))
        first.setdefault(category, t)
        last[category] = t
    rows = [
        [category, count, first[category], last[category]]
        for category, count in sorted(tally.items(), key=lambda kv: -kv[1])
    ]
    if not rows:
        return f"trace: {path.name}: (empty)"
    return render_table(
        ["category", "entries", "first (s)", "last (s)"], rows, title=f"trace: {path.name}"
    )


def render_artifact(path: Path) -> str:
    """Pretty-print one artifact file by suffix."""
    name = path.name
    if name.endswith(".manifest.json"):
        return _render_manifest(path)
    if name.endswith(".metrics.jsonl"):
        return _render_metrics_jsonl(path)
    if name.endswith(".metrics.prom"):
        return f"prometheus snapshot: {path.name}\n{path.read_text().rstrip()}"
    if name.endswith(".trace.jsonl"):
        return _render_trace_jsonl(path)
    raise ValueError(f"unrecognized artifact {path} (expected {', '.join(ARTIFACT_GLOBS)})")


def _expand(paths: list[str]) -> list[Path]:
    expanded: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for pattern in ARTIFACT_GLOBS:
                expanded.extend(sorted(path.glob(pattern)))
        else:
            expanded.append(path)
    return expanded


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Pretty-print run manifests, metrics snapshots, and trace dumps.",
    )
    parser.add_argument("paths", nargs="+", help="artifact files or results directories")
    parser.add_argument("--raw", action="store_true", help="dump file contents without rendering")
    args = parser.parse_args(argv)

    paths = _expand(args.paths)
    if not paths:
        print("no observability artifacts found", file=sys.stderr)
        return 1
    status = 0
    try:
        for path in paths:
            if not path.exists():
                print(f"error: {path}: no such file", file=sys.stderr)
                status = 1
                continue
            try:
                print(path.read_text().rstrip() if args.raw else render_artifact(path))
            except (ValueError, json.JSONDecodeError, TypeError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                status = 1
                continue
            print()
    except BrokenPipeError:
        # reader (e.g. `| head`) closed the pipe: exit quietly, and point
        # stdout at devnull so the interpreter's final flush doesn't retrip
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Frame capture: a tcpdump-lite for the simulated cluster.

Attach a :class:`FrameCapture` to one or more backplanes and every carried
frame is recorded (time, network, addresses, L3/L4 summary, wire size).
Captures render as a text timeline and support simple filtering — the
debugging loop for protocol work on this simulator.

Implementation note: capture hooks into :meth:`Backplane.transmit` by
wrapping it, so it sees frames exactly when they hit the medium (including
ones later lost to hub death or random loss; those are marked from the
drop trace if a shared recorder is provided).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.netsim.backplane import Backplane
from repro.netsim.frames import Frame


@dataclass(frozen=True)
class CapturedFrame:
    """One observed frame."""

    time: float
    network: int
    src: str
    dst: str
    protocol: str
    summary: str
    wire_bytes: int


def _summarize_payload(frame: Frame) -> str:
    payload = frame.payload
    # network-layer packet?
    inner = getattr(payload, "payload", None)
    proto = getattr(payload, "protocol", None)
    if inner is None or proto is None:
        return type(payload).__name__
    kind = type(inner).__name__
    details = ""
    if hasattr(inner, "seq") and hasattr(inner, "ack"):
        details = f" seq={inner.seq} ack={inner.ack}"
    elif hasattr(inner, "ident") and hasattr(inner, "seq"):
        details = f" id={inner.ident}"
    elif hasattr(inner, "dst_port"):
        details = f" port={inner.dst_port}"
    return f"{proto}/{kind}{details}"


class FrameCapture:
    """Records frames crossing the attached backplanes."""

    def __init__(self, backplanes: Iterable[Backplane], max_frames: int = 100_000) -> None:
        if max_frames <= 0:
            raise ValueError("max_frames must be positive")
        self.max_frames = max_frames
        self.frames: list[CapturedFrame] = []
        self.overflowed = False
        self._originals: list[tuple[Backplane, Callable]] = []
        for bp in backplanes:
            self._attach(bp)

    def _attach(self, bp: Backplane) -> None:
        original = bp.transmit

        def tapped(frame: Frame, sender, _bp=bp, _original=original) -> None:
            self._record(_bp, frame)
            _original(frame, sender)

        self._originals.append((bp, original))
        bp.transmit = tapped  # type: ignore[method-assign]

    def detach(self) -> None:
        """Stop capturing and restore the backplanes."""
        for bp, original in self._originals:
            bp.transmit = original  # type: ignore[method-assign]
        self._originals.clear()

    def _record(self, bp: Backplane, frame: Frame) -> None:
        if len(self.frames) >= self.max_frames:
            self.overflowed = True
            return
        self.frames.append(
            CapturedFrame(
                time=bp.sim.now,
                network=bp.network_id,
                src=str(frame.src),
                dst=str(frame.dst),
                protocol=frame.protocol,
                summary=_summarize_payload(frame),
                wire_bytes=frame.wire_bytes,
            )
        )

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.frames)

    def filter(
        self,
        protocol: str | None = None,
        node: int | None = None,
        network: int | None = None,
        since: float = 0.0,
    ) -> list[CapturedFrame]:
        """Subset of captured frames matching every given criterion."""
        out = []
        for cf in self.frames:
            if cf.time < since:
                continue
            if protocol is not None and protocol not in cf.summary and cf.protocol != protocol:
                continue
            if network is not None and cf.network != network:
                continue
            if node is not None:
                node_tag = f".{node}"
                if not (cf.src.endswith(node_tag) or cf.dst.endswith(node_tag) or cf.dst.endswith(".*")):
                    continue
            out.append(cf)
        return out

    def render(self, frames: list[CapturedFrame] | None = None, limit: int = 50) -> str:
        """Text timeline of (a subset of) the capture."""
        frames = self.frames if frames is None else frames
        lines = []
        for cf in frames[:limit]:
            lines.append(
                f"{cf.time * 1e3:10.3f}ms net{cf.network} {cf.src:>8} > {cf.dst:<8} "
                f"{cf.summary} ({cf.wire_bytes}B)"
            )
        if len(frames) > limit:
            lines.append(f"... {len(frames) - limit} more frames")
        if self.overflowed:
            lines.append(f"[capture overflowed at {self.max_frames} frames]")
        return "\n".join(lines)

    def traffic_matrix(self) -> dict[tuple[str, str], int]:
        """(src, dst) -> total wire bytes, over the whole capture."""
        matrix: dict[tuple[str, str], int] = {}
        for cf in self.frames:
            key = (cf.src, cf.dst)
            matrix[key] = matrix.get(key, 0) + cf.wire_bytes
        return matrix

"""Live progress heartbeats for long sweeps.

Long Monte-Carlo sweeps and full experiment regenerations run for minutes
with no output between result tables.  A :class:`ProgressReporter` emits a
heartbeat line to stderr on a wall-clock interval — trials/sec, ETA when a
total is known, and running incident counts — and its :meth:`summary` dict
is folded into the run manifest so the throughput of every run is on record.

Deep hot loops publish through the module-level *current heartbeat* the same
way metrics use the current registry: drivers install a reporter with
:func:`set_heartbeat`, the Monte Carlo batch loop calls ``heartbeat()`` and
pays one global lookup plus a ``None`` check when no reporter is installed.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO


class ProgressReporter:
    """Interval-throttled trials/sec + ETA + incident-count reporter."""

    def __init__(
        self,
        label: str,
        total: int | None = None,
        interval_s: float = 5.0,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.label = label
        self.total = total
        self.interval_s = interval_s
        self._stream = stream
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started
        self.trials = 0
        self.counts: dict[str, int] = {}
        self.heartbeats = 0
        #: total jobs in the active plan, installed by the engine executors
        #: so heartbeat lines (and `repro obs watch`) can show jobs done/total
        self.jobs_total: int | None = None

    # ------------------------------------------------------------------ input
    def add(self, n: int = 1, **counts: int) -> None:
        """Record ``n`` more trials (and named incident counts); maybe emit."""
        self.trials += n
        for key, value in counts.items():
            self.counts[key] = self.counts.get(key, 0) + value
        now = self._clock()
        if now - self._last_emit >= self.interval_s:
            self.emit(now=now)

    def absorb(self, summary: dict) -> None:
        """Fold a worker reporter's :meth:`summary` into this one.

        The parallel executor runs a silent collector reporter in every
        worker process; the parent absorbs each returned summary so its own
        heartbeat line (and the manifest summary) reflects fleet-wide trials
        and incident counts rather than just the coordinating process.
        """
        self.add(int(summary.get("trials", 0)), **summary.get("counts", {}))
        self.heartbeats += int(summary.get("heartbeats", 0))

    # ----------------------------------------------------------------- output
    def _format(self, elapsed: float, final: bool) -> str:
        rate = self.trials / elapsed if elapsed > 0 else 0.0
        progress = f"{self.trials}" if self.total is None else f"{self.trials}/{self.total}"
        parts = [f"[{self.label}] {progress} trials", f"{rate:,.0f} trials/s"]
        if self.jobs_total is not None:
            parts.append(f"jobs {self.counts.get('jobs', 0)}/{self.jobs_total}")
        if not final and self.total is not None and rate > 0 and self.trials < self.total:
            parts.append(f"ETA {(self.total - self.trials) / rate:,.0f}s")
        if final:
            parts.append(f"done in {elapsed:.1f}s")
        if self.counts:
            inner = " ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
            parts.append(f"incidents: {inner}")
        return ", ".join(parts)

    def emit(self, final: bool = False, now: float | None = None) -> str:
        """Write one heartbeat line to the stream; returns the line.

        Each emitted beat is also recorded on the current flight-recorder
        channel (when one is installed), so ``repro obs watch`` can show a
        live trials/s + ETA without re-deriving it from job events.
        """
        now = self._clock() if now is None else now
        self._last_emit = now
        self.heartbeats += 1
        elapsed = now - self._started
        line = self._format(elapsed, final)
        stream = self._stream if self._stream is not None else sys.stderr
        print(line, file=stream, flush=True)
        from repro.obs.flightrecorder import flight_recorder  # no import cycle at module load

        recorder = flight_recorder()
        if recorder is not None:
            recorder.emit(
                "heartbeat",
                label=self.label,
                trials=self.trials,
                total=self.total,
                trials_per_second=round(self.trials / elapsed, 3) if elapsed > 0 else 0.0,
                jobs=self.counts.get("jobs", 0),
                jobs_total=self.jobs_total,
            )
        return line

    def finish(self) -> dict:
        """Emit the final line and return the manifest-ready summary."""
        self.emit(final=True)
        return self.summary()

    def summary(self) -> dict:
        """Machine-readable run summary (merged into run manifests)."""
        elapsed = self._clock() - self._started
        summary = {
            "label": self.label,
            "trials": self.trials,
            "wall_seconds": elapsed,
            "trials_per_second": self.trials / elapsed if elapsed > 0 else 0.0,
            "heartbeats": self.heartbeats,
            "counts": dict(self.counts),
        }
        if self.jobs_total is not None:
            summary["jobs_total"] = self.jobs_total
        return summary


# ------------------------------------------------------------ current reporter
_current: ProgressReporter | None = None


def set_heartbeat(reporter: ProgressReporter | None) -> None:
    """Install (or clear, with ``None``) the process-wide heartbeat."""
    global _current
    _current = reporter


def heartbeat() -> ProgressReporter | None:
    """The currently installed reporter, or ``None`` (the hot-loop check)."""
    return _current

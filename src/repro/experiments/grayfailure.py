"""EXP-GRAY — DRS robustness to random frame loss (gray failures).

The deployed protocol's probe-retry threshold exists for exactly one
reason: a single lost probe on a healthy but lossy segment must not trigger
a reroute.  This experiment runs a *healthy* cluster whose segments drop
frames at random and measures, per (loss rate, retry threshold):

* the false-positive rate (spurious DOWN declarations per link-hour),
* the resulting spurious repairs (route flaps),

and, for the detection side of the trade-off, the added latency a higher
threshold costs when a real failure occurs under the same loss.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.drs import DrsConfig, install_drs
from repro.engine import ExperimentSpec, register
from repro.experiments.base import ExperimentResult
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator
from repro.simkit.rng import spawned_rng

BASE_CONFIG = DrsConfig(sweep_period_s=0.5, probe_timeout_s=0.01, discovery_timeout_s=0.02)


def false_positive_rate(
    loss_rate: float,
    probe_retries: int,
    n: int = 6,
    sim_seconds: float = 120.0,
    seed: int = 0,
) -> tuple[float, float]:
    """(spurious DOWNs per link-hour, spurious repairs per hour) on a healthy cluster.

    The loss stream is spawned from ``seed`` keyed by the grid cell, so every
    (loss rate, retries) cell draws independently instead of all sharing the
    literal seed's stream.
    """
    sim = Simulator()
    rng = spawned_rng(seed, f"grayfailure/fp/loss={loss_rate}/retries={probe_retries}")
    cluster = build_dual_backplane_cluster(sim, n, loss_rate=loss_rate, rng=rng)
    stacks = install_stacks(cluster)
    config = dataclasses.replace(BASE_CONFIG, probe_retries=probe_retries)
    deployment = install_drs(cluster, stacks, config)
    sim.run(until=1.0)
    detects_before = cluster.trace.count("drs-detect")
    repairs_before = deployment.total_repairs()
    t0 = sim.now
    sim.run(until=t0 + sim_seconds)
    hours = (sim.now - t0) / 3600.0
    links = n * (n - 1) * 2  # directed link beliefs across the cluster
    detects = cluster.trace.count("drs-detect") - detects_before
    repairs = deployment.total_repairs() - repairs_before
    return detects / (links * hours), repairs / hours


def detection_latency_under_loss(
    loss_rate: float,
    probe_retries: int,
    n: int = 6,
    repeats: int = 5,
    seed: int = 1,
) -> float:
    """Mean time for node 0 to repair around a real peer-NIC failure.

    Each repeat's loss stream is an independent child spawned from ``seed``
    and keyed by (cell, repeat) — the old additive ``seed + i`` scheme made
    repeat ``i`` of one cell collide with repeat ``i - 1`` of a neighboring
    seed, correlating supposedly independent measurements.
    """
    config = dataclasses.replace(BASE_CONFIG, probe_retries=probe_retries)
    latencies = []
    for i in range(repeats):
        sim = Simulator()
        rng = spawned_rng(
            seed, f"grayfailure/latency/loss={loss_rate}/retries={probe_retries}/rep={i}"
        )
        cluster = build_dual_backplane_cluster(sim, n, loss_rate=loss_rate, rng=rng)
        stacks = install_stacks(cluster)
        install_drs(cluster, stacks, config)
        sim.run(until=2.0)
        t0 = sim.now
        victim = 1 + (i % (n - 1))
        cluster.faults.fail(f"nic{victim}.0")
        sim.run(until=t0 + (probe_retries + 4) * config.sweep_period_s + 2.0)
        repairs = [
            e
            for e in cluster.trace.entries("drs-repair")
            if e.time > t0 and e.fields["node"] == 0 and e.fields["peer"] == victim
        ]
        if repairs:
            latencies.append(repairs[0].time - t0)
    return float(np.mean(latencies)) if latencies else float("nan")


def run(
    loss_rates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10),
    retry_values: tuple[int, ...] = (1, 2, 3),
    sim_seconds: float = 120.0,
) -> ExperimentResult:
    """False-positive / detection-latency trade-off grid."""
    result = ExperimentResult("grayfailure")
    fp_rows = []
    for loss in loss_rates:
        for retries in retry_values:
            fp, flaps = false_positive_rate(loss, retries, sim_seconds=sim_seconds)
            fp_rows.append([loss, retries, fp, flaps])
    result.add_table(
        "false_positives",
        ["loss rate", "probe retries", "spurious DOWNs / link-hour", "route flaps / hour"],
        fp_rows,
        caption="Healthy-but-lossy cluster: how often DRS cries wolf",
    )
    lat_rows = []
    for retries in retry_values:
        lat_rows.append([retries] + [detection_latency_under_loss(loss, retries) for loss in loss_rates])
    result.add_table(
        "detection_latency",
        ["probe retries"] + [f"detect+repair (s) @ loss={l}" for l in loss_rates],
        lat_rows,
        caption="The price of patience: real-failure repair latency per threshold",
    )
    result.note(
        "expected shape: retries=1 flaps even at modest loss; retries=2 (the "
        "deployed default) suppresses false positives below ~5% loss while "
        "adding about one sweep of detection latency"
    )
    return result


register(
    ExperimentSpec(
        name="grayfailure",
        run=run,
        profiles={
            "quick": {"loss_rates": (0.0, 0.05), "retry_values": (1, 2), "sim_seconds": 30.0},
            "full": {},
        },
        order=90,
        description="false positives under random frame loss",
    )
)

"""Ablation bench — the value of DRS two-hop broadcast route discovery.

Compares Equation-1 survivability against a DRS variant without the
broadcast stage (direct links only), quantifying what the paper's
"some other server is able to act as a router" mechanism buys.
"""

import numpy as np

from repro.analysis import simulate_success_probability, success_probability


def test_two_hop_gain(benchmark, capsys):
    rng = np.random.default_rng(7)
    n, f = 16, 4

    def both():
        full = success_probability(n, f)
        reduced = simulate_success_probability(n, f, 200_000, rng, two_hop=False)
        return full, reduced

    full, reduced = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print(f"\nN={n} f={f}: with two-hop={full:.4f} without={reduced:.4f}")
    assert reduced < full
    # the crossed-endpoint cases two-hop saves are a real, measurable share
    assert full - reduced > 0.001


def test_two_hop_gain_shrinks_with_n(benchmark):
    # as N grows the crossed term vanishes (T(N-2, f-2) = 0 for f-2 < N-2),
    # so the ablation gap closes -- two-hop matters most in small clusters
    rng = np.random.default_rng(8)

    def gaps():
        out = []
        for n in (5, 40):
            full = success_probability(n, 4)
            reduced = simulate_success_probability(n, 4, 150_000, rng, two_hop=False)
            out.append(full - reduced)
        return out

    small_gap, large_gap = benchmark.pedantic(gaps, rounds=1, iterations=1, warmup_rounds=0)
    assert small_gap > large_gap

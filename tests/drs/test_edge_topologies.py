"""Edge topologies: the smallest clusters, where the model's corner cases live."""

from repro.drs import install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST, routed_ping_ok


def _rig(n):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    deployment = install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    return sim, cluster, stacks, deployment


def test_two_node_cluster_direct_swap_works():
    sim, cluster, stacks, deployment = _rig(2)
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    assert stacks[0].table.lookup(1).network == 1
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_two_node_crossed_failure_is_genuinely_unreachable():
    # N=2 has no intermediates: the crossed case is unfixable, exactly as
    # Equation 1's T-term predicts (T(0, 0)=1 bad combination)
    sim, cluster, stacks, deployment = _rig(2)
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 3.0)
    assert not routed_ping_ok(sim, stacks, 0, 1)
    assert cluster.trace.count("drs-unreachable") >= 1
    # the analytic model agrees: this failure set is one of the bad ones
    from repro.analysis import pair_connected

    # universe indexing: nic0.1 = index 3, nic1.0 = index 4
    assert not pair_connected(frozenset({3, 4}), 2)


def test_three_node_crossed_failure_uses_the_single_intermediate():
    sim, cluster, stacks, deployment = _rig(3)
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    route = stacks[0].table.lookup(1)
    assert route is not None and route.next_hop == 2
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_two_node_recovers_after_crossed_heal():
    sim, cluster, stacks, deployment = _rig(2)
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    cluster.faults.repair("nic1.0")
    sim.run(until=sim.now + 2.0)
    assert routed_ping_ok(sim, stacks, 0, 1)

"""Failover post-mortems: phase-attributed critical paths per incident.

The paper's headline claim is a deadline: DRS repairs routes within one TCP
retransmission timeout, so applications never notice the failure.  The
aggregate ``drs_failover_latency_seconds`` histogram says whether that held
*on average*; a post-mortem says where one specific slow failover spent its
budget.  Given the spans of a run (live from a :class:`~repro.obs.spans.SpanLog`
or reconstructed from a ``*.trace.jsonl`` artifact), this module rebuilds,
per repair, the critical path

    fault → detection → [discovery-wait → discovery → install | direct-swap]

attributes latency to each phase, and scores the fault→repair total against
the TCP-retransmit deadline (``protocols.tcp.DEFAULT_INITIAL_RTO_S`` unless
overridden), flagging deadline violations.

The failover-phase sum equals the span's duration, which is by construction
the same ``now - detected_at`` value the failover engine observes into the
histogram — post-mortems and metrics cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.spans import Span


def _default_deadline() -> float:
    # Imported lazily: repro.obs must stay importable from the bottom of the
    # stack (netsim), and protocols sits above netsim in the import order.
    from repro.protocols.tcp import DEFAULT_INITIAL_RTO_S

    return DEFAULT_INITIAL_RTO_S


@dataclass(frozen=True)
class Phase:
    """One attributed slice of a critical path."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Phase length in simulated seconds."""
        return self.end - self.start


@dataclass
class IncidentReport:
    """The reconstructed critical path of one detection→repair episode."""

    failover: Span
    incident: Span | None
    detection: Phase | None
    phases: list[Phase] = field(default_factory=list)
    deadline_s: float = field(default_factory=_default_deadline)

    @property
    def node(self) -> int | None:
        """The observing daemon's node."""
        return self.failover.node

    @property
    def peer(self) -> int | None:
        """The peer whose route broke."""
        peer = self.failover.attrs.get("peer")
        return None if peer is None else int(peer)

    @property
    def outcome(self) -> str:
        """How the episode ended: direct-swap, two-hop, or unreachable."""
        return str(self.failover.attrs.get("outcome", "unknown"))

    @property
    def failover_latency_s(self) -> float:
        """Detection to repair install — the histogram's observation."""
        return sum(p.duration for p in self.phases)

    @property
    def total_s(self) -> float:
        """Fault injection (when known) to repair install."""
        start = self.incident.start if self.incident is not None else self.failover.start
        return (self.failover.end or self.failover.start) - start

    @property
    def budget_consumed(self) -> float:
        """Fraction of the TCP-retransmit deadline spent (1.0 = all of it)."""
        return self.total_s / self.deadline_s if self.deadline_s > 0 else float("inf")

    @property
    def deadline_violated(self) -> bool:
        """True when the app would have seen a retransmit before the repair."""
        return self.outcome == "unreachable" or self.budget_consumed > 1.0


def build_postmortems(
    spans: Iterable[Span],
    deadline_s: float | None = None,
    node: int | None = None,
) -> list[IncidentReport]:
    """Reconstruct one report per closed failover span.

    ``node`` restricts the reports to one observer daemon; ``deadline_s``
    overrides the TCP-retransmit budget.
    """
    deadline = _default_deadline() if deadline_s is None else deadline_s
    spans = list(spans)
    by_id = {s.span_id: s for s in spans}
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    reports: list[IncidentReport] = []
    for span in spans:
        if span.phase != "failover" or span.end is None:
            continue
        if node is not None and span.node != node:
            continue
        discovery = next(
            (c for c in children.get(span.span_id, ()) if c.phase == "discovery" and c.end is not None),
            None,
        )
        phases: list[Phase] = []
        if discovery is not None:
            if discovery.start > span.start:
                phases.append(Phase("discovery-wait", span.start, discovery.start))
            phases.append(Phase("discovery", discovery.start, discovery.end))
            if span.end > discovery.end:
                phases.append(Phase("install", discovery.end, span.end))
        elif span.attrs.get("outcome") == "direct-swap":
            phases.append(Phase("direct-swap", span.start, span.end))
        else:
            phases.append(Phase("failover", span.start, span.end))
        incident = by_id.get(span.incident_id) if span.incident_id is not None else None
        detection = (
            Phase("detection", incident.start, span.start)
            if incident is not None and span.start >= incident.start
            else None
        )
        reports.append(
            IncidentReport(
                failover=span,
                incident=incident,
                detection=detection,
                phases=phases,
                deadline_s=deadline,
            )
        )
    reports.sort(key=lambda r: (r.failover.start, r.failover.span_id))
    return reports


def render_postmortems(reports: list[IncidentReport]) -> str:
    """Human-readable post-mortem: one phase table per incident episode."""
    from repro.viz import render_table

    if not reports:
        return "postmortem: no failover episodes recorded (did the run inject faults with tracing on?)"
    blocks: list[str] = []
    for i, report in enumerate(reports, 1):
        component = report.incident.attrs.get("component", "?") if report.incident else "?"
        title = (
            f"incident {i}/{len(reports)}: {component} — "
            f"node{report.node}->peer{report.peer} ({report.outcome})"
        )
        rows: list[list] = []
        if report.detection is not None:
            rows.append(
                ["detection", f"{report.detection.start:.6f}", f"{report.detection.end:.6f}",
                 f"{report.detection.duration:.6f}", "-"]
            )
        failover_total = report.failover_latency_s
        for phase in report.phases:
            share = phase.duration / failover_total if failover_total > 0 else 0.0
            rows.append(
                [phase.name, f"{phase.start:.6f}", f"{phase.end:.6f}",
                 f"{phase.duration:.6f}", f"{share:6.1%}"]
            )
        rows.append(["failover total", "", "", f"{failover_total:.6f}", "100.0%"])
        verdict = "DEADLINE VIOLATED" if report.deadline_violated else "within deadline"
        rows.append(
            [f"fault->repair vs {report.deadline_s:g}s budget", "", "",
             f"{report.total_s:.6f}", f"{report.budget_consumed:6.1%} ({verdict})"]
        )
        blocks.append(
            render_table(["phase", "start (s)", "end (s)", "duration (s)", "share"], rows, title=title)
        )
    violated = sum(1 for r in reports if r.deadline_violated)
    worst = max(reports, key=lambda r: r.budget_consumed)
    blocks.append(
        f"{len(reports)} episode(s), {violated} deadline violation(s); "
        f"worst budget use {worst.budget_consumed:.1%} "
        f"(node{worst.node}->peer{worst.peer} at t={worst.failover.start:.6f}s)"
    )
    return "\n\n".join(blocks)


def summarize_postmortems(reports: list[IncidentReport]) -> dict:
    """Aggregate stats (for run manifests and machine consumers)."""
    if not reports:
        return {"episodes": 0, "deadline_violations": 0}
    return {
        "episodes": len(reports),
        "deadline_violations": sum(1 for r in reports if r.deadline_violated),
        "deadline_s": reports[0].deadline_s,
        "worst_budget_consumed": max(r.budget_consumed for r in reports),
        "mean_failover_latency_s": sum(r.failover_latency_s for r in reports) / len(reports),
        "max_failover_latency_s": max(r.failover_latency_s for r in reports),
    }

"""Unit tests for counters, time-weighted values, and the trace recorder."""

import pytest

from repro.simkit import Counter, Simulator, TimeWeightedValue, TraceRecorder


def test_counter_accumulates():
    c = Counter("pkts")
    c.add()
    c.add(2.5)
    assert c.value == 3.5 and c.events == 2
    c.reset()
    assert c.value == 0 and c.events == 0


def test_time_weighted_mean_piecewise_constant():
    sim = Simulator()
    tw = TimeWeightedValue(sim, initial=0.0)
    sim.schedule(2.0, lambda: tw.set(10.0))   # 0 for [0,2)
    sim.schedule(6.0, lambda: tw.set(0.0))    # 10 for [2,6)
    sim.run(until=10.0)                        # 0 for [6,10)
    # integral = 0*2 + 10*4 + 0*4 = 40 over 10s
    assert tw.mean() == pytest.approx(4.0)


def test_time_weighted_add_and_value():
    sim = Simulator()
    tw = TimeWeightedValue(sim, initial=1.0)
    tw.add(2.0)
    assert tw.value == 3.0


def test_time_weighted_mean_at_zero_duration():
    sim = Simulator()
    tw = TimeWeightedValue(sim, initial=7.0)
    assert tw.mean() == 7.0


def test_trace_records_time_and_fields():
    sim = Simulator()
    tr = TraceRecorder(sim)
    sim.schedule(1.5, lambda: tr.record("ping", src=1, dst=2))
    sim.run()
    (entry,) = tr.entries("ping")
    assert entry.time == 1.5 and entry.fields == {"src": 1, "dst": 2}


def test_trace_category_filtering_and_count():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.record("a", i=1)
    tr.record("b", i=2)
    tr.record("a", i=3)
    assert tr.count("a") == 2
    assert [e.fields["i"] for e in tr.entries("a")] == [1, 3]
    assert [e.fields["i"] for e in tr.iter_entries("b")] == [2]
    assert len(tr) == 3


def test_trace_last():
    sim = Simulator()
    tr = TraceRecorder(sim)
    assert tr.last("x") is None
    tr.record("x", n=1)
    tr.record("x", n=2)
    assert tr.last("x").fields["n"] == 2


def test_trace_disabled_records_nothing():
    sim = Simulator()
    tr = TraceRecorder(sim, enabled=False)
    tr.record("a")
    assert len(tr) == 0


def test_time_weighted_mean_with_until_window():
    sim = Simulator()
    tw = TimeWeightedValue(sim, initial=2.0)
    sim.schedule(4.0, lambda: tw.set(0.0))
    sim.run()  # now == 4.0
    # extend the window beyond the last change: 2 for [0,4), 0 for [4,8)
    assert tw.mean(until=8.0) == pytest.approx(1.0)
    with pytest.raises(ValueError, match="precedes the last change"):
        tw.mean(until=2.0)


def test_time_weighted_reset_restarts_window():
    sim = Simulator()
    tw = TimeWeightedValue(sim, initial=10.0)
    sim.schedule(5.0, lambda: tw.reset())
    sim.run()
    # the pre-reset history is gone; the level carries over
    assert tw.value == 10.0
    assert tw.mean(until=7.0) == pytest.approx(10.0)


def test_time_weighted_reset_with_new_value():
    sim = Simulator()
    tw = TimeWeightedValue(sim, initial=10.0)
    sim.schedule(5.0, lambda: tw.reset(3.0))
    sim.run()
    assert tw.value == 3.0
    assert tw.mean(until=6.0) == pytest.approx(3.0)


def test_trace_category_disable_enable():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.disable_category("drop", "noise")
    assert not tr.wants("drop")
    assert tr.wants("fault")
    tr.record("drop", n=1)
    tr.record("fault", n=2)
    assert tr.count("drop") == 0 and tr.count("fault") == 1
    tr.enable_category("drop")
    tr.record("drop", n=3)
    assert tr.count("drop") == 1


def test_trace_set_category_filter_replaces_set():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.disable_category("a")
    tr.set_category_filter({"b"})
    assert tr.wants("a") and not tr.wants("b")


def test_trace_wants_false_when_disabled_globally():
    sim = Simulator()
    tr = TraceRecorder(sim, enabled=False)
    assert not tr.wants("anything")


def test_trace_disabled_category_skips_hooks():
    sim = Simulator()
    tr = TraceRecorder(sim)
    seen = []
    tr.add_hook(lambda e: seen.append(e.category))
    tr.disable_category("quiet")
    tr.record("quiet")
    tr.record("loud")
    assert seen == ["loud"]


def test_trace_hooks_fire():
    sim = Simulator()
    tr = TraceRecorder(sim)
    seen = []
    tr.add_hook(lambda e: seen.append(e.category))
    tr.record("alpha")
    tr.record("beta")
    assert seen == ["alpha", "beta"]


def test_trace_clear_keeps_hooks():
    sim = Simulator()
    tr = TraceRecorder(sim)
    seen = []
    tr.add_hook(lambda e: seen.append(1))
    tr.record("a")
    tr.clear()
    assert len(tr) == 0
    tr.record("b")
    assert seen == [1, 1]


def test_trace_raising_hook_is_swallowed_and_detached():
    # Policy: an export hook that raises must not corrupt the trace or abort
    # the simulation -- the entry is kept, the hook is detached after its
    # first failure, and the exception is preserved in hook_errors.
    sim = Simulator()
    tr = TraceRecorder(sim)
    seen = []
    boom = RuntimeError("disk full")

    def bad_hook(entry):
        raise boom

    tr.add_hook(bad_hook)
    tr.add_hook(lambda e: seen.append(e.category))
    tr.record("a")
    assert tr.count("a") == 1  # the entry itself survived
    assert seen == ["a"]  # later hooks still ran
    assert tr.hook_errors == [boom]
    tr.record("b")  # detached: must not raise or re-record the error
    assert tr.hook_errors == [boom]
    assert seen == ["a", "b"]


def test_trace_all_hooks_run_even_when_several_raise():
    sim = Simulator()
    tr = TraceRecorder(sim)

    def bad1(entry):
        raise ValueError("one")

    def bad2(entry):
        raise KeyError("two")

    tr.add_hook(bad1)
    tr.add_hook(bad2)
    tr.record("x")
    assert [type(e) for e in tr.hook_errors] == [ValueError, KeyError]
    tr.record("y")
    assert len(tr) == 2 and len(tr.hook_errors) == 2


def test_trace_count_and_last_track_index():
    sim = Simulator()
    tr = TraceRecorder(sim)
    assert tr.count("a") == 0 and tr.last("a") is None
    tr.record("a", i=1)
    sim.schedule(2.0, lambda: tr.record("a", i=2))
    sim.run()
    assert tr.count("a") == 2
    assert tr.last("a").fields["i"] == 2 and tr.last("a").time == 2.0
    assert tr.last("missing") is None


def test_trace_clear_resets_category_index():
    sim = Simulator()
    tr = TraceRecorder(sim)
    tr.record("a", i=1)
    tr.record("b", i=2)
    tr.clear()
    assert len(tr) == 0
    assert tr.count("a") == 0 and tr.last("a") is None
    assert tr.entries("a") == [] and list(tr.iter_entries("b")) == []
    tr.record("a", i=3)  # index rebuilds cleanly after a clear
    assert tr.count("a") == 1 and tr.last("a").fields["i"] == 3

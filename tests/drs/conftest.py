"""Shared DRS test rig: cluster + stacks + daemons with fast test timings."""

import pytest

from repro.drs import DrsConfig, install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import PingStatus, install_stacks
from repro.simkit import Simulator

#: Aggressive timings so integration tests run in milliseconds of sim time.
FAST = DrsConfig(
    sweep_period_s=0.1,
    probe_timeout_s=0.01,
    probe_retries=2,
    discovery_timeout_s=0.02,
    path_check_period_s=0.5,
)


@pytest.fixture
def drs_rig():
    """(sim, cluster, stacks, deployment) for a warmed-up 5-node cluster."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 5)
    stacks = install_stacks(cluster)
    deployment = install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)  # several sweeps: all links observed UP
    return sim, cluster, stacks, deployment


def routed_ping_ok(sim, stacks, src, dst, timeout_s=0.05):
    """Run a routed ping src->dst and return True on a reply."""
    results = []
    stacks[src].icmp.ping(dst, timeout_s=timeout_s, callback=results.append)
    deadline = sim.now + timeout_s + 0.05
    sim.run(until=deadline)
    return bool(results) and results[0].status is PingStatus.REPLY

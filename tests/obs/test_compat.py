"""The legacy-primitive shim must warn but hand back the unchanged classes."""

import warnings

import pytest

from repro.simkit import trace as simkit_trace


def test_counter_shim_warns_and_returns_original():
    from repro.obs import compat

    with pytest.warns(DeprecationWarning, match="MetricsRegistry.counter"):
        cls = compat.Counter
    assert cls is simkit_trace.Counter


def test_time_weighted_shim_warns_and_returns_original():
    from repro.obs import compat

    with pytest.warns(DeprecationWarning, match="deprecation shim"):
        cls = compat.TimeWeightedValue
    assert cls is simkit_trace.TimeWeightedValue


def test_direct_simkit_import_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        counter = simkit_trace.Counter("ok")
        counter.add()
    assert counter.value == 1


def test_unknown_attribute_raises():
    from repro.obs import compat

    with pytest.raises(AttributeError):
        compat.NoSuchThing


def test_shim_names_listed_in_dir():
    from repro.obs import compat

    names = dir(compat)
    assert "Counter" in names and "TimeWeightedValue" in names

"""Tests for the all-pairs (whole-cluster) survivability model."""

import numpy as np
import pytest

from repro.analysis import (
    allpairs_good_combinations,
    allpairs_success_curve,
    allpairs_success_probability,
    enumerate_success_probability,
    simulate_allpairs_success,
    success_probability,
)
from repro.analysis.allpairs import allpairs_connected_vec
from repro.analysis.montecarlo import sample_failure_matrix


@pytest.mark.parametrize("n", range(2, 7))
def test_closed_form_matches_exhaustive(n):
    for f in range(0, min(2 * n + 2, 6) + 1):
        exact = allpairs_success_probability(n, f)
        brute = enumerate_success_probability(n, f, all_pairs=True)
        assert exact == pytest.approx(brute, abs=1e-12), (n, f)


def test_allpairs_never_exceeds_pairwise():
    for n in (4, 10, 30):
        for f in range(0, 8):
            assert allpairs_success_probability(n, f) <= success_probability(n, f) + 1e-12


def test_zero_and_one_failure():
    for n in (2, 10, 50):
        assert allpairs_success_probability(n, 0) == 1.0
        assert allpairs_success_probability(n, 1) == 1.0


def test_converges_slower_than_pairwise():
    # fixed f still converges to 1, but visibly below Equation 1
    assert allpairs_success_probability(200, 4) > allpairs_success_probability(20, 4)
    for n in (20, 63):
        assert allpairs_success_probability(n, 4) < success_probability(n, 4) - 0.01


def test_curve_monotone_toward_one():
    ns, ps = allpairs_success_curve(f=4, n_max=63)
    assert (np.diff(ps) >= -1e-12).all()
    assert ps[-1] > ps[0]


def test_iid_allpairs_decays_with_cluster_size():
    # the qualitative divergence: under iid component failures, whole-cluster
    # availability eventually drops as N grows while pairwise rises
    from repro.analysis.availability import iid_allpairs_success_probability, iid_success_probability

    rho = 0.02
    ap_small = iid_allpairs_success_probability(6, rho)
    ap_large = iid_allpairs_success_probability(40, rho)
    assert ap_large < ap_small
    assert iid_success_probability(40, rho) > iid_success_probability(6, rho)


def test_vectorized_predicate_matches_scalar_enumeration():
    from repro.analysis import pair_connected

    rng = np.random.default_rng(3)
    n = 5
    for f in (2, 4, 6):
        failed = sample_failure_matrix(n, f, 300, rng)
        vec = allpairs_connected_vec(failed)
        for row in range(0, 300, 29):
            failed_set = frozenset(np.flatnonzero(failed[row]).tolist())
            scalar = all(
                pair_connected(failed_set, n, a, b)
                for a in range(n)
                for b in range(a + 1, n)
            )
            assert vec[row] == scalar, (f, row, sorted(failed_set))


def test_montecarlo_matches_closed_form():
    rng = np.random.default_rng(0)
    for n, f in [(6, 3), (12, 4)]:
        estimate = simulate_allpairs_success(n, f, 100_000, rng)
        exact = allpairs_success_probability(n, f)
        assert abs(estimate - exact) < 0.006, (n, f)


def test_good_combinations_edges():
    n = 5
    # f = n: exactly the two all-on-one-network cover sets + one-hub term
    assert allpairs_good_combinations(n, n) == 2 + 2 * 5  # C(5,4)=5
    # f > n with hubs up contributes nothing beyond the one-hub term
    assert allpairs_good_combinations(n, n + 1) == 2 * 1  # C(5,5)=1
    assert allpairs_good_combinations(n, 2 * n + 2) == 0


def test_validation():
    with pytest.raises(ValueError):
        allpairs_success_probability(1, 0)
    with pytest.raises(ValueError):
        allpairs_success_curve(f=2, n_max=3, n_min=10)

"""Unit tests for ICMP echo: direct probes, routed pings, timeouts."""

import pytest

from repro.protocols import PingStatus, Route, RouteSource


def _collect(results):
    return lambda res: results.append(res)


def test_direct_ping_reply_with_rtt(rig):
    sim, cluster, stacks = rig
    results = []
    stacks[0].icmp.ping_direct(0, 1, timeout_s=1.0, callback=_collect(results))
    sim.run()
    (res,) = results
    assert res.status is PingStatus.REPLY
    assert res.network == 0 and res.dst_node == 1
    # RTT = 2 * (84B serialization + 5us propagation)
    assert res.rtt_s == pytest.approx(2 * (84 * 8 / 100e6 + 5e-6))


def test_direct_ping_each_network_independent(rig):
    sim, cluster, stacks = rig
    results = []
    cluster.faults.fail("hub0")
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.5, callback=_collect(results))
    stacks[0].icmp.ping_direct(1, 1, timeout_s=0.5, callback=_collect(results))
    sim.run()
    by_net = {r.network: r.status for r in results}
    assert by_net[0] is PingStatus.TIMEOUT
    assert by_net[1] is PingStatus.REPLY


def test_timeout_when_peer_nic_down(rig):
    sim, cluster, stacks = rig
    cluster.faults.fail("nic1.0")
    results = []
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.25, callback=_collect(results))
    sim.run()
    assert results[0].status is PingStatus.TIMEOUT
    assert sim.now >= 0.25


def test_send_failed_when_own_nic_down_is_async(rig):
    sim, cluster, stacks = rig
    cluster.faults.fail("nic0.0")
    results = []
    stacks[0].icmp.ping_direct(0, 1, timeout_s=0.25, callback=_collect(results))
    assert results == []  # callback must not run re-entrantly
    sim.run()
    assert results[0].status is PingStatus.SEND_FAILED
    assert results[0].rtt_s is None


def test_routed_ping_follows_routing_table(rig):
    sim, cluster, stacks = rig
    # Make 0 -> 1 travel via intermediate 2, and ensure the reply routes back.
    stacks[0].table.install(Route(dst=1, network=0, next_hop=2, source=RouteSource.DRS))
    stacks[2].table.install(Route(dst=1, network=1, next_hop=1, source=RouteSource.DRS))
    results = []
    stacks[0].icmp.ping(1, timeout_s=1.0, callback=_collect(results))
    sim.run()
    assert results[0].status is PingStatus.REPLY
    assert results[0].network is None


def test_routed_ping_without_route_fails(rig):
    sim, cluster, stacks = rig
    stacks[0].table.withdraw(1, RouteSource.STATIC)
    results = []
    stacks[0].icmp.ping(1, timeout_s=1.0, callback=_collect(results))
    sim.run()
    assert results[0].status is PingStatus.SEND_FAILED


def test_late_reply_after_timeout_ignored(rig):
    sim, cluster, stacks = rig
    results = []
    # 1us timeout: reply arrives later (~18us RTT) and must not double-report.
    stacks[0].icmp.ping_direct(0, 1, timeout_s=1e-6, callback=_collect(results))
    sim.run()
    assert len(results) == 1
    assert results[0].status is PingStatus.TIMEOUT


def test_ping_with_padding_changes_wire_size(rig):
    sim, cluster, stacks = rig
    results = []
    stacks[0].icmp.ping_direct(0, 1, timeout_s=1.0, callback=_collect(results), data_bytes=1000)
    sim.run()
    assert results[0].status is PingStatus.REPLY
    # 20 IP + 8 ICMP + 1000 data + 18 ether + 20 preamble = 1066 bytes per leg
    assert results[0].rtt_s == pytest.approx(2 * (1066 * 8 / 100e6 + 5e-6))


def test_zero_timeout_rejected(rig):
    sim, cluster, stacks = rig
    with pytest.raises(ValueError):
        stacks[0].icmp.ping_direct(0, 1, timeout_s=0, callback=lambda r: None)


def test_responder_counts(rig):
    sim, cluster, stacks = rig
    results = []
    stacks[0].icmp.ping_direct(0, 1, timeout_s=1.0, callback=_collect(results))
    sim.run()
    assert stacks[1].icmp.requests_answered.value == 1
    assert stacks[0].icmp.replies_matched.value == 1
    assert stacks[0].icmp.timeouts.value == 0

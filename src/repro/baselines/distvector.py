"""Baseline 2: a RIP-like distance-vector routing protocol.

The fully-traditional comparison point (RFC 1058 mechanics, scaled timers):
every router periodically broadcasts its distance vector on each attached
network; neighbors learn routes at advertised-metric + 1; routes not
refreshed within ``timeout_s`` are invalidated.  Failure recovery therefore
costs up to a full timeout before an alternative (the second backplane, or a
two-hop neighbor path) takes over — the latency DRS's proactive probing is
designed to beat.

Implemented subset: split horizon (a route is not advertised onto the
network it egresses on), infinity metric 16, no triggered updates (the
pessimistic-but-standard configuration; triggered updates are an ablation
flag in the config).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.addresses import NetworkId, NodeId
from repro.netsim.topology import Cluster
from repro.protocols.routing import Route, RouteSource
from repro.protocols.stack import HostStack
from repro.simkit import Counter, Process, Simulator, TraceRecorder

#: Well-known UDP port (RIP's 520).
RIP_PORT = 520

INFINITY_METRIC = 16
ADVERT_HEADER_BYTES = 4
ADVERT_ENTRY_BYTES = 20


@dataclass(frozen=True)
class DistVectorConfig:
    """Timers (classic RIP: 30 s advertise, 180 s timeout)."""

    advertise_interval_s: float = 3.0
    timeout_s: float = 9.0
    triggered_updates: bool = False

    def __post_init__(self) -> None:
        if self.advertise_interval_s <= 0 or self.timeout_s <= 0:
            raise ValueError("intervals must be positive")
        if self.timeout_s < 2 * self.advertise_interval_s:
            raise ValueError("timeout_s should cover at least two advertise intervals")


@dataclass(frozen=True)
class Advertisement:
    """One distance-vector broadcast: origin and its reachable destinations."""

    origin: NodeId
    entries: tuple[tuple[NodeId, int], ...]  # (destination, metric)

    @property
    def wire_data_bytes(self) -> int:
        """Approximate RIP packet size for accounting."""
        return ADVERT_HEADER_BYTES + ADVERT_ENTRY_BYTES * len(self.entries)


@dataclass
class _Candidate:
    metric: int
    last_heard: float


class DistVectorRouter:
    """One node's RIP-like routing agent."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        config: DistVectorConfig,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.config = config
        self.trace = trace
        # (dst, next_hop, network) -> candidate
        self._candidates: dict[tuple[NodeId, NodeId, NetworkId], _Candidate] = {}
        self._proc: Process | None = None
        self.adverts_sent = Counter(f"dv{stack.node.node_id}.adverts")
        self.adverts_received = Counter(f"dv{stack.node.node_id}.received")
        self.route_changes = Counter(f"dv{stack.node.node_id}.changes")
        stack.udp.bind(RIP_PORT, self._on_advert)

    @property
    def owner(self) -> NodeId:
        """The node this router runs on."""
        return self.stack.node.node_id

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start periodic advertising (and implicit route maintenance)."""
        if self._proc is None or self._proc.finished:
            self._proc = Process(self.sim, self._advertise_loop(), name=f"dv{self.owner}")

    def stop(self) -> None:
        """Stop advertising."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _advertise_loop(self):
        # Desynchronize routers like real RIP implementations do.
        yield (self.owner * 0.37) % self.config.advertise_interval_s
        while True:
            self._expire_candidates()
            self._recompute_routes()
            self._advertise()
            yield self.config.advertise_interval_s

    # -------------------------------------------------------------- advertise
    def _advertise(self) -> None:
        active = self._best_routes()
        for net in self.stack.node.networks:
            entries: list[tuple[NodeId, int]] = [(self.owner, 0)]
            for dst, (metric, next_hop, egress_net) in active.items():
                if egress_net == net:
                    continue  # split horizon
                entries.append((dst, metric))
            advert = Advertisement(origin=self.owner, entries=tuple(entries))
            if self.stack.udp.broadcast(net, RIP_PORT, data=advert, data_bytes=advert.wire_data_bytes):
                self.adverts_sent.add()

    def _on_advert(self, dgram, src_node: NodeId, arrived_on: NetworkId) -> None:
        advert: Advertisement = dgram.data
        self.adverts_received.add()
        now = self.sim.now
        changed = False
        for dst, metric in advert.entries:
            if dst == self.owner:
                continue
            new_metric = min(metric + 1, INFINITY_METRIC)
            key = (dst, advert.origin, arrived_on)
            prior = self._candidates.get(key)
            self._candidates[key] = _Candidate(metric=new_metric, last_heard=now)
            if prior is None or prior.metric != new_metric:
                changed = True
        if changed and self.config.triggered_updates:
            self._expire_candidates()
            self._recompute_routes()
            self._advertise()

    # ------------------------------------------------------------ route calc
    def _expire_candidates(self) -> None:
        cutoff = self.sim.now - self.config.timeout_s
        stale = [k for k, c in self._candidates.items() if c.last_heard < cutoff]
        for key in stale:
            del self._candidates[key]

    def _best_routes(self) -> dict[NodeId, tuple[int, NodeId, NetworkId]]:
        best: dict[NodeId, tuple[int, NodeId, NetworkId]] = {}
        for (dst, next_hop, net), cand in self._candidates.items():
            if cand.metric >= INFINITY_METRIC:
                continue
            current = best.get(dst)
            # deterministic tie-break: metric, then next_hop id, then network
            key = (cand.metric, next_hop, net)
            if current is None or key < (current[0], current[1], current[2]):
                best[dst] = (cand.metric, next_hop, net)
        return best

    def _recompute_routes(self) -> None:
        best = self._best_routes()
        for dst, (metric, next_hop, net) in best.items():
            active = self.stack.table.lookup(dst)
            if (
                active is None
                or active.source is not RouteSource.DISTVECTOR
                or active.next_hop != next_hop
                or active.network != net
                or active.metric != metric
            ):
                self.stack.table.install(
                    Route(
                        dst=dst,
                        network=net,
                        next_hop=next_hop,
                        source=RouteSource.DISTVECTOR,
                        metric=metric,
                        installed_at=self.sim.now,
                    )
                )
                self.route_changes.add()
                if self.trace is not None:
                    self.trace.record("dv-route-change", node=self.owner, dst=dst, via=next_hop, network=net, metric=metric)
        # destinations that lost every candidate fall back to whatever is
        # shadowed (static boot route), mirroring RIP garbage collection
        for dst in list(self.stack.table.snapshot()):
            if dst not in best:
                self.stack.table.withdraw(dst, RouteSource.DISTVECTOR)


@dataclass
class DistVectorDeployment:
    """All RIP-like routers of one cluster."""

    config: DistVectorConfig
    routers: dict[int, DistVectorRouter] = field(default_factory=dict)

    def start(self) -> None:
        """Start every router."""
        for router in self.routers.values():
            router.start()

    def stop(self) -> None:
        """Stop every router."""
        for router in self.routers.values():
            router.stop()


def install_distvector(
    cluster: Cluster,
    stacks: dict[int, HostStack],
    config: DistVectorConfig | None = None,
    start: bool = True,
) -> DistVectorDeployment:
    """Install (and by default start) a distance-vector router per node."""
    if config is None:
        config = DistVectorConfig()
    routers = {
        node.node_id: DistVectorRouter(cluster.sim, stacks[node.node_id], config, trace=cluster.trace)
        for node in cluster.nodes
    }
    deployment = DistVectorDeployment(config=config, routers=routers)
    if start:
        deployment.start()
    return deployment

"""Tests for the availability-planning layer."""

import pytest

from repro.analysis import (
    component_unavailability,
    iid_success_probability,
    pair_availability,
    success_probability,
)


def test_component_unavailability():
    assert component_unavailability(99, 1) == pytest.approx(0.01)
    assert component_unavailability(100, 0) == 0.0
    with pytest.raises(ValueError):
        component_unavailability(0, 1)
    with pytest.raises(ValueError):
        component_unavailability(10, -1)


def test_iid_success_rho_zero_is_one():
    assert iid_success_probability(10, 0.0) == pytest.approx(1.0)


def test_iid_success_bounded_and_monotone_in_rho():
    p_low = iid_success_probability(10, 0.001)
    p_high = iid_success_probability(10, 0.05)
    assert 0 < p_high < p_low < 1


def test_iid_success_improves_with_n():
    # the paper's headline carried into the time domain
    assert iid_success_probability(40, 0.01) > iid_success_probability(4, 0.01)


def test_iid_mixing_consistent_with_conditional():
    # mixture bounded by the best and worst conditional values it averages
    rho = 0.02
    n = 8
    p = iid_success_probability(n, rho)
    assert success_probability(n, 2 * n + 2) <= p <= success_probability(n, 0)


def test_iid_validation():
    with pytest.raises(ValueError):
        iid_success_probability(10, 1.0)
    with pytest.raises(ValueError):
        iid_success_probability(10, -0.1)


def test_pair_availability_report_fields():
    report = pair_availability(n=10, mtbf_hours=10_000, mttr_hours=24, repair_latency_s=2.0)
    assert 0 < report.combined_availability < 1
    assert report.combined_availability == pytest.approx(
        report.structural_availability * report.transient_availability
    )
    assert report.downtime_minutes_per_year > 0
    assert report.nines > 2


def test_faster_repair_buys_availability():
    slow = pair_availability(10, 10_000, 24, repair_latency_s=9.0)   # reactive-ish
    fast = pair_availability(10, 10_000, 24, repair_latency_s=1.0)   # DRS-ish
    assert fast.combined_availability > slow.combined_availability
    assert fast.downtime_minutes_per_year < slow.downtime_minutes_per_year


def test_bigger_cluster_buys_structural_availability():
    small = pair_availability(4, 10_000, 24, 1.0)
    large = pair_availability(32, 10_000, 24, 1.0)
    assert large.structural_availability > small.structural_availability


def test_validation():
    with pytest.raises(ValueError):
        pair_availability(10, 10_000, 24, repair_latency_s=-1)

# Convenience targets for the DRS reproduction.

PYTHON ?= python

.PHONY: install test lint smoke bench experiments experiments-quick examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m compileall -q src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipped (compileall passed)"; \
	fi

# end-to-end check: a quick experiment must emit its observability artifacts
smoke:
	rm -rf /tmp/drs-smoke
	$(PYTHON) -m repro.experiments.runner --quick figure2 --out /tmp/drs-smoke
	test -f /tmp/drs-smoke/figure2.manifest.json
	test -f /tmp/drs-smoke/figure2.metrics.jsonl
	test -f /tmp/drs-smoke/figure2.metrics.prom
	grep -q drs_probe_rtt_seconds /tmp/drs-smoke/figure2.metrics.jsonl
	grep -q drs_failover_latency_seconds /tmp/drs-smoke/figure2.metrics.jsonl
	$(PYTHON) -m repro obs /tmp/drs-smoke
	@echo "smoke: OK"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner --out results --html

experiments-quick:
	$(PYTHON) -m repro.experiments.runner --quick --out results

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +

#!/usr/bin/env python
"""From the paper's models to an SLA: downtime minutes per year.

Combines Equation 1 (mixed over iid component lifetimes) with the measured
DRS repair latency to answer the operator questions the paper's math
enables but never states:

* how many minutes per year is a server pair dark, per routing regime?
* does growing the cluster help?  (any pair: yes; the whole cluster: no!)
* what does the field-calibrated failure mix do to the uniform model?

Run:  python examples/availability_planning.py
"""

import numpy as np

from repro.analysis import (
    hub_nic_weight_ratio,
    iid_allpairs_success_probability,
    iid_success_probability,
    pair_availability,
    simulate_weighted_success,
    success_probability,
)
from repro.viz import render_table


def main() -> None:
    mtbf_h, mttr_h = 8_760.0, 24.0  # one failure per component-year, day-long RMA

    rows = []
    for repair_s, regime in [(1.1, "DRS (proactive)"), (9.0, "reactive"), (3600.0, "page a human")]:
        report = pair_availability(n=10, mtbf_hours=mtbf_h, mttr_hours=mttr_h, repair_latency_s=repair_s)
        rows.append([regime, repair_s, report.downtime_minutes_per_year, round(report.nines, 2)])
    print(render_table(
        ["routing regime", "repair latency (s)", "pair downtime (min/yr)", "nines"],
        rows,
        title="10-server cluster, per-component MTBF 1y / MTTR 24h",
    ))

    print()
    rows = []
    for n in (4, 8, 16, 32, 63):
        rows.append([
            n,
            iid_success_probability(n, rho=0.0027),        # 24h/8784h
            iid_allpairs_success_probability(n, rho=0.0027),
        ])
    print(render_table(
        ["N", "P[a given pair up]", "P[whole cluster connected]"],
        rows,
        title="Scaling the cluster: pairs win, the collective loses",
    ))

    print()
    rng = np.random.default_rng(0)
    rows = []
    for n, f in [(10, 2), (10, 3)]:
        ratio = hub_nic_weight_ratio(n)
        weighted = simulate_weighted_success(n, f, 200_000, rng, hub_weight=ratio)
        rows.append([n, f, success_probability(n, f), weighted])
    print(render_table(
        ["N", "f", "Equation 1 (uniform)", "field-weighted (hub-heavy)"],
        rows,
        title="The uniform-failure assumption flatters the hubs",
    ))
    print("\ntakeaway: the dual backplane plus proactive repair buys ~4.3 nines for any "
          "pair; the residual risk concentrates in the two shared hubs, which the "
          "paper's uniform model undercounts.")


if __name__ == "__main__":
    main()

"""Switched-fabric substrate: the modern alternative to the paper's hubs.

The deployed clusters used shared-medium hubs — one collision domain per
backplane, which is why Figure 1's probe budget divides a single 100 Mb/s
pipe.  This module models the hardware that replaced them: a store-and-
forward **learning switch** with a dedicated full-duplex link per port.

Performance semantics differ from :class:`~repro.netsim.backplane.Backplane`:

* each port's ingress and egress serialize independently at the link rate
  (no shared-medium contention; aggregate throughput scales with ports),
* store-and-forward adds one full frame-reception before forwarding,
* unknown destinations are flooded and source addresses are learned,
  like a real L2 switch.

Failure semantics are identical: the switch is still one shared component
whose death severs the whole segment — so the paper's survivability model
(Equation 1) applies to switched clusters unchanged, while the *cost* model
(Figure 1) relaxes: probe sweeps no longer compete for one medium.  The
``bench_switched`` benchmark quantifies both statements.

The class is interface-compatible with ``Backplane`` (attach/transmit plus
the accounting counters), so NICs, protocols, and DRS run unmodified.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.addresses import NetworkId
from repro.netsim.component import Component, ComponentKind
from repro.netsim.frames import Frame
from repro.simkit import Counter, Simulator, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.netsim.nic import Nic


class Switch(Component):
    """A learning store-and-forward switch with per-port full-duplex links."""

    def __init__(
        self,
        sim: Simulator,
        network_id: NetworkId,
        bandwidth_bps: float = 100e6,
        prop_delay_s: float = 5e-6,
        switching_delay_s: float = 10e-6,
        trace: TraceRecorder | None = None,
    ) -> None:
        super().__init__(name=f"switch{network_id}", kind=ComponentKind.HUB)
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
        if prop_delay_s < 0 or switching_delay_s < 0:
            raise ValueError("delays must be >= 0")
        self.sim = sim
        self.network_id = network_id
        self.bandwidth_bps = float(bandwidth_bps)
        self.prop_delay_s = float(prop_delay_s)
        self.switching_delay_s = float(switching_delay_s)
        self.trace = trace
        self._nics: dict[int, "Nic"] = {}
        #: per-port link busy-until times, per direction
        self._ingress_free: dict[int, float] = {}
        self._egress_free: dict[int, float] = {}
        #: the learning table: node id -> port (node id); ages not modelled
        self.mac_table: dict[int, int] = {}
        self.bits_carried = Counter(f"switch{network_id}.bits")
        self.frames_carried = Counter(f"switch{network_id}.frames")
        self.frames_dropped = Counter(f"switch{network_id}.drops")
        self.frames_flooded = Counter(f"switch{network_id}.floods")

    # ------------------------------------------------------------ attachment
    def attach(self, nic: "Nic") -> None:
        """Attach a NIC to its own switch port."""
        node = nic.addr.node
        if node in self._nics:
            raise ValueError(f"node {node} already has a NIC on network {self.network_id}")
        if nic.addr.network != self.network_id:
            raise ValueError(f"NIC {nic.addr} does not belong on network {self.network_id}")
        self._nics[node] = nic
        self._ingress_free[node] = 0.0
        self._egress_free[node] = 0.0

    @property
    def attached(self) -> list["Nic"]:
        """All NICs attached to this switch (up or down)."""
        return list(self._nics.values())

    # ------------------------------------------------------------- transport
    def transmit(self, frame: Frame, sender: "Nic") -> None:
        """Serialize the frame up the sender's port, then switch it."""
        if not self.up:
            self._drop(frame, reason="switch-down")
            return
        port = sender.addr.node
        tx_time = frame.wire_bits / self.bandwidth_bps
        start = max(self.sim.now, self._ingress_free[port])
        done = start + tx_time
        self._ingress_free[port] = done
        self.bits_carried.add(frame.wire_bits)
        self.frames_carried.add()
        # store-and-forward: the switch acts once the whole frame is in
        self.sim.schedule_at(done + self.switching_delay_s, lambda: self._switch(frame, port))

    def _switch(self, frame: Frame, ingress_port: int) -> None:
        if not self.up:
            self._drop(frame, reason="switch-died-in-flight")
            return
        self.mac_table[frame.src.node] = ingress_port
        if frame.dst.is_broadcast():
            for port in self._nics:
                if port != ingress_port:
                    self._egress(frame, port)
            return
        port = self.mac_table.get(frame.dst.node)
        if port is None:
            # unknown unicast: flood (the real thing; also how the first
            # frame to a silent host finds it)
            self.frames_flooded.add()
            delivered_any = False
            for p in self._nics:
                if p != ingress_port:
                    self._egress(frame, p)
                    delivered_any = True
            if not delivered_any:
                self._drop(frame, reason="no-port")
        elif port == ingress_port:
            self._drop(frame, reason="hairpin")  # dst learned on the sender's own port
        else:
            self._egress(frame, port)

    def _egress(self, frame: Frame, port: int) -> None:
        nic = self._nics.get(port)
        if nic is None:
            self._drop(frame, reason="no-port")
            return
        tx_time = frame.wire_bits / self.bandwidth_bps
        start = max(self.sim.now, self._egress_free[port])
        done = start + tx_time
        self._egress_free[port] = done

        def deliver(nic=nic, frame=frame):
            if not self.up:
                self._drop(frame, reason="switch-died-in-flight")
                return
            # only the addressed (or broadcast-reached) NIC consumes it;
            # flooded copies to the wrong host are dropped by addressing
            if frame.dst.is_broadcast() or frame.dst.node == nic.addr.node:
                nic.deliver(frame)

        self.sim.schedule_at(done + self.prop_delay_s, deliver)

    def _drop(self, frame: Frame, reason: str) -> None:
        self.frames_dropped.add()
        if self.trace is not None:
            self.trace.record("drop", where=self.name, reason=reason, frame=str(frame), network=self.network_id)

    # ------------------------------------------------------------- metering
    def utilization(self) -> float:
        """Mean fraction of *one link's* capacity used since t=0.

        With per-port links the meaningful aggregate is bits over
        ``ports * bandwidth * time``; this single-link form is kept for
        interface parity with :class:`Backplane` and reads as "how much of
        one shared pipe this traffic would have needed".
        """
        duration = self.sim.now
        if duration <= 0:
            return 0.0
        return self.bits_carried.value / (self.bandwidth_bps * duration)


def build_dual_switched_cluster(
    sim: Simulator,
    n: int,
    bandwidth_bps: float = 100e6,
    prop_delay_s: float = 5e-6,
    switching_delay_s: float = 10e-6,
    trace: TraceRecorder | None = None,
):
    """The paper's topology on switches instead of hubs.

    Returns the same :class:`~repro.netsim.topology.Cluster` shape (the
    switches sit in ``cluster.backplanes``), so stacks, DRS, baselines, and
    fault injection work unchanged; component names are ``switch0/1``.
    """
    from repro.netsim.faults import FaultInjector, component_universe
    from repro.netsim.nic import Nic
    from repro.netsim.node import Node
    from repro.netsim.topology import Cluster
    from repro.netsim.addresses import InterfaceAddr

    if n < 2:
        raise ValueError(f"a cluster needs at least 2 nodes, got {n}")
    if trace is None:
        trace = TraceRecorder(sim)
    switches = [
        Switch(
            sim,
            network_id=net,
            bandwidth_bps=bandwidth_bps,
            prop_delay_s=prop_delay_s,
            switching_delay_s=switching_delay_s,
            trace=trace,
        )
        for net in (0, 1)
    ]
    nodes = []
    for i in range(n):
        node = Node(sim, node_id=i)
        for net in (0, 1):
            node.add_nic(Nic(InterfaceAddr(node=i, network=net), switches[net], trace=trace))
        nodes.append(node)
    from repro.obs.metrics import resolve_registry

    cluster = Cluster(
        sim=sim, nodes=nodes, backplanes=switches, faults=None, trace=trace, metrics=resolve_registry(None)  # type: ignore[arg-type]
    )
    cluster.faults = FaultInjector(sim, component_universe(cluster), trace=trace)
    return cluster

"""Tests for the triggered-update (notify_peers) extension."""

import dataclasses

from repro.drs import DrsConfig, install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST, routed_ping_ok

NOTIFY = dataclasses.replace(FAST, notify_peers=True)


def _rig(config, n=6):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    deployment = install_drs(cluster, stacks, config)
    sim.run(until=1.0)
    return sim, cluster, stacks, deployment


def _all_repaired_time(cluster, victim, t_fail, nodes):
    """Latest time any non-victim node repaired its route to the victim."""
    times = {}
    for e in cluster.trace.entries("drs-repair"):
        if e.time > t_fail and e.fields["peer"] == victim and e.fields["node"] != victim:
            times.setdefault(e.fields["node"], e.time)
    expected = {n for n in nodes if n != victim}
    if set(times) != expected:
        return None
    return max(times.values())


def test_notifications_speed_up_cluster_convergence():
    results = {}
    for name, config in (("base", FAST), ("notify", NOTIFY)):
        sim, cluster, stacks, deployment = _rig(config)
        t_fail = sim.now
        cluster.faults.fail("nic2.0")
        sim.run(until=t_fail + 2.0)
        done = _all_repaired_time(cluster, victim=2, t_fail=t_fail, nodes=range(6))
        assert done is not None, f"{name}: not every node repaired"
        results[name] = done - t_fail
    # with notifications, cluster-wide convergence collapses to roughly the
    # first detector's latency; without, stragglers wait out their own sweeps
    assert results["notify"] < results["base"]


def test_notify_repairs_remain_correct():
    sim, cluster, stacks, deployment = _rig(NOTIFY)
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    for src in (0, 2, 3):
        assert stacks[src].table.lookup(1).network == 1
        assert routed_ping_ok(sim, stacks, src, 1)


def test_notification_suppression_no_storm():
    sim, cluster, stacks, deployment = _rig(NOTIFY)
    bits_before = sum(bp.frames_carried.value for bp in cluster.backplanes)
    cluster.faults.fail("hub0")  # worst case: every link on net0 dies at once
    sim.run(until=sim.now + 1.0)
    # count LinkDownNotification control bytes: bounded, not O(n^2) per sweep
    notes = sum(
        1
        for daemon in deployment.daemons.values()
        for (peer, net), t in daemon.failover._notified_at.items()
    )
    # suppression allows at most one announcement per (peer, network) per
    # sweep per announcing daemon; the shared suppression via reception
    # keeps the total far below nodes * links
    n = 6
    assert notes <= n * (n - 1)


def test_notify_disabled_ignores_notifications():
    # a mixed cluster: node 0 notifies, others run base config -> they ignore
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    from repro.drs.daemon import DrsDaemon

    daemons = {}
    for node in cluster.nodes:
        config = NOTIFY if node.node_id == 0 else FAST
        daemons[node.node_id] = DrsDaemon(sim, stacks[node.node_id], [n.node_id for n in cluster.nodes], config, trace=cluster.trace)
        daemons[node.node_id].start()
    sim.run(until=1.0)
    cluster.faults.fail("nic2.0")
    sim.run(until=sim.now + 2.0)
    # everyone still converges (by their own sweeps), no crash on mixed config
    for src in (0, 1, 3):
        assert stacks[src].table.lookup(2).network == 1

"""Unit tests for the event queue."""

import pytest

from repro.simkit.events import EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, lambda: order.append(3))
    q.push(1.0, lambda: order.append(1))
    q.push(2.0, lambda: order.append(2))
    while q:
        q.pop().callback()
    assert order == [1, 2, 3]


def test_fifo_among_equal_times():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(1.0, lambda i=i: order.append(i))
    while q:
        q.pop().callback()
    assert order == list(range(10))


def test_priority_breaks_time_ties():
    q = EventQueue()
    order = []
    q.push(1.0, lambda: order.append("normal"), priority=0)
    q.push(1.0, lambda: order.append("early"), priority=-1)
    q.push(1.0, lambda: order.append("late"), priority=5)
    while q:
        q.pop().callback()
    assert order == ["early", "normal", "late"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    ev = q.push(1.0, lambda: fired.append("a"))
    q.push(2.0, lambda: fired.append("b"))
    q.cancel(ev)
    assert len(q) == 1
    while q:
        q.pop().callback()
    assert fired == ["b"]


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 1


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_pop_all_cancelled_raises():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.cancel(ev)
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(ev)
    assert q.peek_time() == 5.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_len_and_bool():
    q = EventQueue()
    assert not q
    q.push(1.0, lambda: None)
    assert q and len(q) == 1
    q.clear()
    assert not q and len(q) == 0

"""Extension bench — hubs vs switches: what the modern fabric changes.

Two claims, measured:

1. **Survivability is unchanged** — the switch is still one shared
   component; DRS behaves identically on either substrate.
2. **The Figure-1 constraint relaxes** — probe traffic on a switched
   fabric does not compete for one shared medium, so aggregate throughput
   scales with ports and the probe budget stops being a single-pipe
   fraction.
"""

from repro.drs import DrsConfig, install_drs
from repro.netsim import build_dual_backplane_cluster, build_dual_switched_cluster
from repro.protocols import install_stacks
from repro.simkit import Process, Simulator


def _aggregate_goodput(build, n=6, flows=3, message_bytes=100_000, duration=1.0):
    """Total application bytes delivered across disjoint node pairs."""
    sim = Simulator()
    cluster = build(sim, n)
    stacks = install_stacks(cluster)
    delivered = []
    for i in range(flows):
        src, dst = 2 * i, 2 * i + 1
        stacks[dst].tcp.listen(9000, on_message=lambda c, d, s: delivered.append(s))
        conn = stacks[src].tcp.connect(dst, 9000, window_segments=64)

        def pump(conn=conn):
            while True:
                conn.send_message(data_bytes=message_bytes)
                yield 0.01

        Process(sim, pump(), name=f"flow{i}")
    sim.run(until=duration)
    return sum(delivered)


def test_switched_fabric_scales_aggregate_throughput(once, capsys):
    def both():
        hub = _aggregate_goodput(build_dual_backplane_cluster)
        switch = _aggregate_goodput(build_dual_switched_cluster)
        return hub, switch

    hub, switch = once(both)
    with capsys.disabled():
        print(f"\naggregate goodput over 1 s: hub={hub / 1e6:.1f} MB switched={switch / 1e6:.1f} MB")
    # three disjoint flows: the shared medium caps the hub; the switch scales
    assert switch > 1.5 * hub


def test_drs_failover_identical_on_switches(once):
    def run(build):
        sim = Simulator()
        cluster = build(sim, 5)
        stacks = install_stacks(cluster)
        install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.2, probe_timeout_s=0.01))
        sim.run(until=1.0)
        t0 = sim.now
        cluster.faults.fail("nic1.0")
        sim.run(until=t0 + 1.0)
        repairs = [
            e for e in cluster.trace.entries("drs-repair")
            if e.time > t0 and e.fields["node"] == 0 and e.fields["peer"] == 1
        ]
        return repairs[0].time - t0 if repairs else None

    def both():
        return run(build_dual_backplane_cluster), run(build_dual_switched_cluster)

    hub_latency, switch_latency = once(both)
    assert hub_latency is not None and switch_latency is not None
    # same protocol, same timers: detection latency within one sweep of each other
    assert abs(hub_latency - switch_latency) < 0.4

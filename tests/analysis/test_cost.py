"""Tests for the Figure-1 proactive-cost model."""

import numpy as np
import pytest

from repro.analysis import (
    detection_time_s,
    max_nodes_within,
    probe_bits_per_sweep,
    response_time_curve,
    sweep_time_s,
)


def test_probe_bits_per_sweep():
    # n(n-1) ordered pairs, request+reply, 84 wire bytes each
    assert probe_bits_per_sweep(10) == 10 * 9 * 2 * 84 * 8
    with pytest.raises(ValueError):
        probe_bits_per_sweep(1)


def test_paper_checkpoint_90_hosts_10_percent():
    # "ninety hosts are supported in less than 1 second with only 10% of
    # the bandwidth usage" -- our calibration puts 90 hosts at ~1.08 s and
    # 89 hosts under 1 s; the shape matches within one node.
    t90 = sweep_time_s(90, budget=0.10)
    assert 0.9 < t90 < 1.2
    assert max_nodes_within(1.1, budget=0.10) >= 90


def test_sweep_time_quadratic_in_n():
    assert sweep_time_s(40, 0.1) / sweep_time_s(20, 0.1) == pytest.approx(40 * 39 / (20 * 19))


def test_sweep_time_inverse_in_budget_and_bandwidth():
    assert sweep_time_s(30, 0.05) == pytest.approx(2 * sweep_time_s(30, 0.10))
    assert sweep_time_s(30, 0.10, bandwidth_bps=1e9) == pytest.approx(sweep_time_s(30, 0.10) / 10)


def test_sweep_time_vectorized():
    ns = np.array([10, 20, 40])
    ts = sweep_time_s(ns, 0.10)
    assert ts.shape == (3,)
    assert (np.diff(ts) > 0).all()


def test_max_nodes_consistent_with_sweep_time():
    for budget in (0.05, 0.10, 0.15, 0.25):
        for deadline in (0.5, 1.0, 2.0):
            n = max_nodes_within(deadline, budget)
            assert sweep_time_s(n, budget) <= deadline + 1e-9
            assert sweep_time_s(n + 1, budget) > deadline


def test_max_nodes_monotone_in_budget():
    ns = [max_nodes_within(1.0, b) for b in (0.05, 0.10, 0.15, 0.25)]
    assert ns == sorted(ns)
    assert ns[0] < ns[-1]


def test_response_time_curve_families():
    curves = response_time_curve(range(2, 100), budgets=[0.05, 0.10, 0.25])
    assert set(curves) == {0.05, 0.10, 0.25}
    # at every N, a bigger budget responds faster
    assert (curves[0.25] < curves[0.05]).all()


def test_detection_time_adds_retry_timeouts():
    base = sweep_time_s(20, 0.10)
    assert detection_time_s(20, 0.10, probe_timeout_s=0.02, probe_retries=2) == pytest.approx(base + 0.04)


def test_frame_size_sensitivity_monotone():
    from repro.analysis import frame_size_sensitivity

    rows = frame_size_sensitivity()
    sizes = [r[0] for r in rows]
    max_nodes = [r[1] for r in rows]
    sweep_90 = [r[2] for r in rows]
    assert sizes == sorted(sizes)
    # bigger probes -> fewer nodes fit, longer sweeps
    assert max_nodes == sorted(max_nodes, reverse=True)
    assert sweep_90 == sorted(sweep_90)
    # our 84-byte calibration is in the sweep
    assert 84 in sizes


def test_validation_errors():
    with pytest.raises(ValueError):
        sweep_time_s(10, 0.0)
    with pytest.raises(ValueError):
        sweep_time_s(10, 1.5)
    with pytest.raises(ValueError):
        sweep_time_s(1, 0.1)
    with pytest.raises(ValueError):
        sweep_time_s(10, 0.1, bandwidth_bps=0)
    with pytest.raises(ValueError):
        max_nodes_within(0, 0.1)
    with pytest.raises(ValueError):
        max_nodes_within(1.0, 0)

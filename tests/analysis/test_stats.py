"""Tests for Wilson intervals and precision-targeted Monte Carlo."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_to_precision,
    mc_success_estimate,
    normal_ppf,
    success_probability,
    wilson_interval,
)
from repro.analysis.stats import _Z_TABLE, _z_for


def test_wilson_basic_properties():
    est = wilson_interval(80, 100)
    assert est.point == 0.8
    assert est.low < 0.8 < est.high
    assert 0 <= est.low <= est.high <= 1
    assert est.half_width == pytest.approx((est.high - est.low) / 2)


def test_wilson_edge_counts():
    zero = wilson_interval(0, 50)
    assert zero.low == 0.0 and zero.high > 0.0
    full = wilson_interval(50, 50)
    assert full.high == 1.0 and full.low < 1.0


def test_wilson_narrows_with_trials():
    small = wilson_interval(8, 10)
    large = wilson_interval(8000, 10000)
    assert large.half_width < small.half_width


def test_wilson_confidence_levels():
    n90 = wilson_interval(50, 100, confidence=0.90)
    n99 = wilson_interval(50, 100, confidence=0.99)
    assert n99.half_width > n90.half_width


def test_wilson_arbitrary_confidence_no_longer_raises():
    # the z table used to be the only source; 0.42 was a ValueError
    n42 = wilson_interval(50, 100, confidence=0.42)
    n95 = wilson_interval(50, 100, confidence=0.95)
    assert 0 < n42.half_width < n95.half_width


def test_normal_ppf_matches_known_quantiles():
    # published two-sided z values at the classic confidence levels
    known = {0.975: 1.959964, 0.95: 1.644854, 0.995: 2.575829, 0.9995: 3.290527}
    for p, z in known.items():
        assert normal_ppf(p) == pytest.approx(z, abs=5e-6)
    # symmetry and the tail branches
    assert normal_ppf(0.5) == pytest.approx(0.0, abs=1e-12)
    assert normal_ppf(0.01) == pytest.approx(-normal_ppf(0.99), rel=1e-9)
    assert normal_ppf(1e-9) == pytest.approx(-5.997807, abs=1e-4)
    with pytest.raises(ValueError):
        normal_ppf(0.0)
    with pytest.raises(ValueError):
        normal_ppf(1.0)


def test_z_for_table_levels_stay_bit_identical():
    # legacy levels must keep their exact published constants, so every
    # interval recorded before the inverse-normal fallback stays bit-equal
    for confidence, z in _Z_TABLE.items():
        assert _z_for(confidence) == z
    # near-misses of a table key fall through to the (more exact) ppf
    assert _z_for(0.95 + 1e-6) != _Z_TABLE[0.95]
    assert _z_for(0.95 + 1e-6) == pytest.approx(1.9600, abs=1e-3)


def test_z_for_fallback_tracks_normal_ppf():
    for confidence in (0.5, 0.8, 0.975, 0.9973):
        assert _z_for(confidence) == pytest.approx(
            normal_ppf((1 + confidence) / 2), rel=1e-12
        )
    with pytest.raises(ValueError):
        _z_for(0.0)
    with pytest.raises(ValueError):
        _z_for(1.0)


def test_wilson_validation():
    with pytest.raises(ValueError):
        wilson_interval(5, 0)
    with pytest.raises(ValueError):
        wilson_interval(-1, 10)
    with pytest.raises(ValueError):
        wilson_interval(11, 10)


def test_wilson_coverage_empirical():
    # ~95% of intervals should cover the true p
    rng = np.random.default_rng(0)
    p_true = 0.3
    covered = 0
    runs = 400
    for _ in range(runs):
        successes = rng.binomial(200, p_true)
        est = wilson_interval(int(successes), 200)
        covered += est.low <= p_true <= est.high
    assert covered / runs > 0.90


def test_estimate_to_precision_reaches_target():
    rng = np.random.default_rng(1)
    p_true = 0.7

    def batch(k):
        return int(rng.binomial(k, p_true))

    est = estimate_to_precision(batch, target_half_width=0.01, batch=2_000)
    assert est.half_width <= 0.01
    assert abs(est.point - p_true) < 0.05


def test_estimate_to_precision_respects_budget():
    rng = np.random.default_rng(2)
    est = estimate_to_precision(
        lambda k: int(rng.binomial(k, 0.5)),
        target_half_width=1e-6,  # unreachable within the budget
        batch=1_000,
        max_trials=5_000,
    )
    assert est.trials == 5_000
    assert est.half_width > 1e-6


def test_estimate_to_precision_validation():
    with pytest.raises(ValueError, match="target_half_width must be positive"):
        estimate_to_precision(lambda k: 0, target_half_width=0)
    with pytest.raises(ValueError, match="target_half_width must be positive"):
        estimate_to_precision(lambda k: 0, target_half_width=-0.5)
    with pytest.raises(ValueError, match="confidence must be in"):
        estimate_to_precision(lambda k: 0, target_half_width=0.1, confidence=1.0)
    with pytest.raises(ValueError, match="confidence must be in"):
        estimate_to_precision(lambda k: 0, target_half_width=0.1, confidence=-0.2)
    with pytest.raises(ValueError):
        estimate_to_precision(lambda k: 0, target_half_width=0.1, batch=0)
    with pytest.raises(ValueError):
        estimate_to_precision(lambda k: k + 1, target_half_width=0.1, batch=10)


@pytest.mark.parametrize("all_success", [True, False])
def test_estimate_to_precision_degenerate_stream_terminates(all_success):
    # p̂ pinned at 0 or 1: the Wilson half-width still shrinks (~z²/2T), so
    # the loop reaches any positive target well inside the budget
    est = estimate_to_precision(
        (lambda k: k) if all_success else (lambda k: 0),
        target_half_width=0.004,
        batch=100,
        max_trials=50_000,
    )
    assert est.half_width <= 0.004
    assert est.trials < 50_000
    assert est.point == (1.0 if all_success else 0.0)


def test_mc_success_estimate_brackets_equation1():
    rng = np.random.default_rng(3)
    n, f = 12, 3
    est = mc_success_estimate(n, f, rng, target_half_width=0.005)
    exact = success_probability(n, f)
    assert est.half_width <= 0.005
    # generous 2x interval check: the CI should bracket the closed form
    margin = 2 * est.half_width
    assert est.point - margin <= exact <= est.point + margin

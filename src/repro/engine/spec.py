"""Declarative experiment registry.

Each :mod:`repro.experiments.*` module declares what it can run as one or
more :class:`ExperimentSpec` objects — name, run callable, and ``quick`` /
``full`` parameter profiles — and registers them at import time.  The
``drs-experiments`` CLI is then a pure consumer: it looks specs up here
instead of maintaining hand-written lambda tables per profile.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

PROFILES = ("quick", "full")


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: its entry point and parameter profiles.

    ``profiles`` maps profile name to the kwargs passed to ``run`` (``full``
    is usually empty — the function's own defaults are the paper-scale
    configuration).  ``parallel`` marks runs that accept an ``executor=``
    keyword (sweep experiments decomposed into a job plan); ``order`` fixes
    the CLI's default run/listing sequence.
    """

    name: str
    run: Callable[..., Any]
    profiles: dict[str, dict[str, Any]] = field(default_factory=dict)
    parallel: bool = False
    order: int = 100
    description: str = ""

    def __post_init__(self) -> None:
        for profile in PROFILES:
            if profile not in self.profiles:
                raise ValueError(f"spec {self.name!r} is missing the {profile!r} profile")

    def kwargs(self, profile: str) -> dict[str, Any]:
        """A fresh copy of one profile's kwargs."""
        if profile not in self.profiles:
            raise KeyError(f"spec {self.name!r} has no profile {profile!r}: {list(self.profiles)}")
        return dict(self.profiles[profile])

    def accepts(self, keyword: str) -> bool:
        """Whether ``run`` takes ``keyword`` (CLI flags probe before passing)."""
        try:
            return keyword in inspect.signature(self.run).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            return False

    @property
    def accepts_seed(self) -> bool:
        """Whether ``run`` takes a ``seed`` keyword (CLI ``--seed`` override)."""
        return self.accepts("seed")


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or deliberately replace) a spec under its name."""
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Look one spec up; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; have {', '.join(spec_names())}") from None


def experiment_specs() -> list[ExperimentSpec]:
    """Every registered spec, in (order, name) sequence."""
    return sorted(_REGISTRY.values(), key=lambda spec: (spec.order, spec.name))


def spec_names() -> list[str]:
    """Registered experiment names, in listing order."""
    return [spec.name for spec in experiment_specs()]

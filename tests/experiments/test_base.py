"""Tests for the experiment-result container and report writing."""

import pytest

from repro.experiments.base import ExperimentResult


def _result():
    r = ExperimentResult("demo")
    r.add_table("t", ["a", "b"], [[1, 2.5], [3, 4.0]], caption="cap")
    r.add_series("s", {"curve": ([1, 2, 3], [1, 4, 9])}, x_label="x", y_label="y")
    r.note("an observation")
    return r


def test_render_contains_everything():
    text = _result().render()
    assert "=== demo ===" in text
    assert "cap" in text
    assert "legend" in text
    assert "note: an observation" in text


def test_write_produces_report_and_csvs(tmp_path):
    files = _result().write(tmp_path)
    names = sorted(f.name for f in files)
    assert names == ["demo.txt", "demo_s.csv", "demo_t.csv"]
    assert (tmp_path / "demo_t.csv").read_text().splitlines()[0] == "a,b"
    series_csv = (tmp_path / "demo_s.csv").read_text().splitlines()
    assert series_csv[0] == "x,curve"
    assert series_csv[1] == "1,1"


def test_write_unaligned_series_long_format(tmp_path):
    r = ExperimentResult("demo2")
    r.add_series("s", {"a": ([1, 2], [1, 2]), "b": ([5, 6, 7], [5, 6, 7])})
    r.write(tmp_path)
    lines = (tmp_path / "demo2_s.csv").read_text().splitlines()
    assert lines[0] == "series,x,y"
    assert len(lines) == 1 + 2 + 3

"""Unit tests for frames and wire sizing."""

import pytest

from repro.netsim import Frame, InterfaceAddr, wire_bytes
from repro.netsim.addresses import broadcast_addr


class _Payload:
    def __init__(self, size_bytes):
        self.size_bytes = size_bytes


def test_minimum_frame_padding():
    # tiny payloads pad to the 64-byte minimum + 20 bytes preamble/IFG
    assert wire_bytes(0) == 84
    assert wire_bytes(46) == 84


def test_icmp_echo_is_84_wire_bytes():
    # 20B IP + 8B ICMP = 28B payload -> the Figure-1 calibration constant
    assert wire_bytes(28) == 84


def test_large_frame_no_padding():
    assert wire_bytes(1000) == 1000 + 18 + 20


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        wire_bytes(-1)


def test_frame_sizes_follow_payload():
    f = Frame(
        src=InterfaceAddr(0, 0),
        dst=InterfaceAddr(1, 0),
        protocol="test",
        payload=_Payload(28),
    )
    assert f.payload_bytes == 28
    assert f.wire_bytes == 84
    assert f.wire_bits == 672


def test_frame_payload_without_size_raises():
    f = Frame(src=InterfaceAddr(0, 0), dst=InterfaceAddr(1, 0), protocol="t", payload=object())
    with pytest.raises(TypeError):
        _ = f.payload_bytes


def test_frame_ids_unique():
    a = Frame(InterfaceAddr(0, 0), InterfaceAddr(1, 0), "t", _Payload(1))
    b = Frame(InterfaceAddr(0, 0), InterfaceAddr(1, 0), "t", _Payload(1))
    assert a.frame_id != b.frame_id


def test_broadcast_addr():
    addr = broadcast_addr(1)
    assert addr.is_broadcast() and addr.network == 1
    assert not InterfaceAddr(3, 1).is_broadcast()
    assert str(addr) == "net1.*"
    assert str(InterfaceAddr(3, 0)) == "net0.3"

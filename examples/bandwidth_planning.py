#!/usr/bin/env python
"""Capacity planning with the Figure-1 cost model, validated on the wire.

How large a cluster can DRS monitor given a detection deadline and a probe
bandwidth budget?  Computes the paper's Figure-1 trade-off for several
budgets, then *verifies* one operating point by running the real protocol on
the simulated 100 Mb/s network and measuring the probe traffic.

Run:  python examples/bandwidth_planning.py
"""

from repro.analysis import max_nodes_within, sweep_time_s
from repro.experiments.figure1 import measured_probe_fraction
from repro.viz import render_table


def main() -> None:
    budgets = (0.05, 0.10, 0.15, 0.25)
    deadlines = (0.5, 1.0, 2.0)
    rows = []
    for budget in budgets:
        rows.append(
            [f"{budget:.0%}"] + [max_nodes_within(d, budget) for d in deadlines]
        )
    print(render_table(
        ["probe budget"] + [f"max N @ {d:.1f}s" for d in deadlines],
        rows,
        title="Figure 1 planning table: cluster size vs detection deadline (100 Mb/s)",
    ))

    print(f"\npaper checkpoint: ~90 hosts in <1 s at 10%  ->  model: "
          f"T(90, 10%) = {sweep_time_s(90, 0.10):.3f} s, "
          f"max N within 1.1 s = {max_nodes_within(1.1, 0.10)}")

    budget = 0.10
    measured = measured_probe_fraction(n=8, budget=budget, sim_seconds=5.0)
    print(f"\nlive check: an 8-node cluster paced for a {budget:.0%} budget put "
          f"{measured:.2%} of the wire into probes "
          f"(pacing error {abs(measured - budget) / budget:.2%})")


if __name__ == "__main__":
    main()

"""Unit tests for the UDP service."""

import pytest


def test_send_and_port_dispatch(rig):
    sim, cluster, stacks = rig
    got = []
    stacks[1].udp.bind(53, lambda d, src, net: got.append((d.data, src, net)))
    stacks[0].udp.send(1, 53, data={"q": "hello"}, data_bytes=16)
    sim.run()
    assert got == [({"q": "hello"}, 0, 0)]


def test_unbound_port_drops_and_counts(rig):
    sim, cluster, stacks = rig
    stacks[0].udp.send(1, 9999, data_bytes=4)
    sim.run()
    assert stacks[1].udp.dropped_no_port.value == 1
    assert stacks[1].udp.delivered.value == 0


def test_double_bind_rejected(rig):
    sim, cluster, stacks = rig
    stacks[0].udp.bind(7, lambda d, s, n: None)
    with pytest.raises(ValueError):
        stacks[0].udp.bind(7, lambda d, s, n: None)


def test_unbind_releases_port(rig):
    sim, cluster, stacks = rig
    stacks[0].udp.bind(7, lambda d, s, n: None)
    stacks[0].udp.unbind(7)
    stacks[0].udp.bind(7, lambda d, s, n: None)  # rebind works
    stacks[0].udp.unbind(12345)  # unbinding an unbound port is a no-op


def test_send_direct_on_secondary_network(rig):
    sim, cluster, stacks = rig
    got = []
    stacks[1].udp.bind(5, lambda d, src, net: got.append(net))
    cluster.faults.fail("hub0")
    stacks[0].udp.send_direct(1, 1, 5, data_bytes=4)
    sim.run()
    assert got == [1]


def test_broadcast_reaches_peers(rig):
    sim, cluster, stacks = rig
    got = []
    for nid, stack in stacks.items():
        stack.udp.bind(99, lambda d, src, net, nid=nid: got.append((nid, src)))
    stacks[2].udp.broadcast(0, 99, data_bytes=8)
    sim.run()
    assert sorted(got) == [(0, 2), (1, 2), (3, 2)]


def test_datagram_size_includes_header(rig):
    from repro.protocols import Datagram

    d = Datagram(src_port=1, dst_port=2, data_bytes=100)
    assert d.size_bytes == 108


def test_send_failure_when_no_route(rig):
    from repro.protocols import RouteSource

    sim, cluster, stacks = rig
    stacks[0].table.withdraw(1, RouteSource.STATIC)
    assert stacks[0].udp.send(1, 5, data_bytes=1) is False
    assert stacks[0].udp.sent.value == 0

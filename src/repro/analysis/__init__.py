"""Survivability analysis: Equation 1, Monte Carlo validation, cost model.

This package reproduces the paper's quantitative evaluation:

* :mod:`~repro.analysis.exact` — the reconstructed closed form of
  **Equation 1**: ``P[Success](N, f) = F(N, f) / C(2N+2, f)`` for a node
  pair in an N-node dual-backplane cluster with exactly ``f`` failed
  components.  Validated exhaustively (see :mod:`~repro.analysis.exhaustive`)
  and against the paper's 0.99 crossovers (N=18/32/45 for f=2/3/4).
* :mod:`~repro.analysis.exhaustive` — brute-force enumeration over all
  ``C(2N+2, f)`` failure sets, with ablation switches (no two-hop routing,
  single backplane) for the design-choice benchmarks.
* :mod:`~repro.analysis.montecarlo` — the vectorized Monte Carlo estimator
  (the paper's "DRS Simulation" used to validate the model, Figure 3).
* :mod:`~repro.analysis.variance` — variance-reduced estimators: hub-state
  stratification with closed-form stratum weights and the endpoint-dead
  control variate (derivation in ``docs/model.md`` §11).
* :mod:`~repro.analysis.convergence` — mean-absolute-deviation-vs-iterations
  study over ``f < N < 64`` (Figure 3 proper).
* :mod:`~repro.analysis.cost` — the proactive-cost model of Figure 1:
  probe-sweep response time vs cluster size under a bandwidth budget.
* :mod:`~repro.analysis.qmodel` — the unconditional layer: failure-count
  weights ``q^f`` combined with Equation 1.
"""

from repro.analysis.combinatorics import comb0, covering_nic_failures
from repro.analysis.exact import (
    bad_combinations,
    crossover_n,
    expected_dark_pairs,
    good_combinations,
    success_curve,
    success_probability,
    total_combinations,
)
from repro.analysis.exhaustive import enumerate_success_probability, pair_connected
from repro.analysis.montecarlo import (
    DEFAULT_MAX_ADAPTIVE_TRIALS,
    connectivity_levels,
    failure_matrix_at,
    failure_rank_matrix,
    sample_failure_matrix,
    simulate_curve,
    simulate_full_grid,
    simulate_grid,
    simulate_success_probability,
)
from repro.analysis.variance import (
    allocate_stratum_trials,
    endpoint_dead_conditional_mean,
    hub_stratum_weights,
    one_hub_conditional_success,
    sample_conditional_failure_matrix,
    site_stratum_weights,
    stratified_grid,
    stratified_success_probability,
)
from repro.analysis.convergence import (
    convergence_study,
    mean_absolute_deviation,
    mean_absolute_deviation_grid,
)
from repro.analysis.cost import (
    detection_time_s,
    frame_size_sensitivity,
    max_nodes_within,
    probe_bits_per_sweep,
    response_time_curve,
    sweep_time_s,
)
from repro.analysis.qmodel import failure_count_pmf, unconditional_success
from repro.analysis.allpairs import (
    allpairs_good_combinations,
    allpairs_success_curve,
    allpairs_success_probability,
    simulate_allpairs_success,
)
from repro.analysis.weighted import (
    hub_nic_weight_ratio,
    simulate_weighted_success,
    weighted_failure_matrix,
)
from repro.analysis.topokernel import (
    enumerate_topology_success,
    exact_topology_success,
    require_baseline_connectivity,
    sample_topology_failures,
    simulate_topology_grid,
    simulate_topology_success,
    topology_connected_vec,
    topology_connectivity_levels,
    topology_keys,
)
from repro.analysis.stats import (
    ProportionEstimate,
    estimate_to_precision,
    mc_success_estimate,
    normal_ppf,
    wilson_interval,
)
from repro.analysis.availability import (
    AvailabilityReport,
    component_unavailability,
    iid_allpairs_success_probability,
    iid_success_probability,
    pair_availability,
)

__all__ = [
    "comb0",
    "covering_nic_failures",
    "bad_combinations",
    "good_combinations",
    "total_combinations",
    "success_probability",
    "success_curve",
    "crossover_n",
    "expected_dark_pairs",
    "enumerate_success_probability",
    "pair_connected",
    "simulate_success_probability",
    "simulate_curve",
    "simulate_grid",
    "simulate_full_grid",
    "DEFAULT_MAX_ADAPTIVE_TRIALS",
    "site_stratum_weights",
    "hub_stratum_weights",
    "one_hub_conditional_success",
    "endpoint_dead_conditional_mean",
    "allocate_stratum_trials",
    "sample_conditional_failure_matrix",
    "stratified_grid",
    "stratified_success_probability",
    "sample_failure_matrix",
    "failure_rank_matrix",
    "failure_matrix_at",
    "connectivity_levels",
    "mean_absolute_deviation",
    "mean_absolute_deviation_grid",
    "convergence_study",
    "sweep_time_s",
    "max_nodes_within",
    "response_time_curve",
    "detection_time_s",
    "frame_size_sensitivity",
    "probe_bits_per_sweep",
    "failure_count_pmf",
    "unconditional_success",
    "allpairs_good_combinations",
    "allpairs_success_probability",
    "allpairs_success_curve",
    "simulate_allpairs_success",
    "weighted_failure_matrix",
    "simulate_weighted_success",
    "hub_nic_weight_ratio",
    "topology_connected_vec",
    "topology_connectivity_levels",
    "topology_keys",
    "sample_topology_failures",
    "simulate_topology_success",
    "simulate_topology_grid",
    "enumerate_topology_success",
    "exact_topology_success",
    "require_baseline_connectivity",
    "component_unavailability",
    "iid_success_probability",
    "iid_allpairs_success_probability",
    "pair_availability",
    "AvailabilityReport",
    "wilson_interval",
    "normal_ppf",
    "estimate_to_precision",
    "mc_success_estimate",
    "ProportionEstimate",
]

"""FIG2 bench — P[Success] vs N for f = 2..10 (Equation 1 + MC overlay).

Regenerates Figure 2's nine curves over the paper's f < N < 64 domain and
asserts convergence toward 1.
"""

from repro.analysis import success_curve, success_probability
from repro.experiments import figure2


def test_figure2_equation_curves(benchmark):
    def build():
        return {f: success_curve(f, n_max=63) for f in range(2, 11)}

    curves = benchmark(build)
    for f, (ns, ps) in curves.items():
        assert ns[-1] == 63
        assert (ps[1:] >= ps[:-1] - 1e-12).all(), f"f={f} not monotone"
        assert ps[-1] > 0.9
    # more simultaneous failures -> lower survivability at equal N
    assert curves[10][1][-1] < curves[2][1][-1]


def test_figure2_report_with_mc_overlay(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure2.run(mc_iterations=5_000), rounds=1, iterations=1, warmup_rounds=0
    )
    with capsys.disabled():
        print()
        print(result.render())
    eq = result.series["equation1"].curves
    mc = result.series["montecarlo"].curves
    # MC overlay tracks the closed form pointwise
    for f in range(2, 11):
        _, eq_ps = eq[f"f={f}"]
        _, mc_ps = mc[f"sim f={f}"]
        assert (abs(eq_ps - mc_ps) < 0.05).all()


def test_figure2_prose_values(benchmark):
    values = benchmark(lambda: [success_probability(n, f) for f, n in [(2, 18), (3, 32), (4, 45)]])
    assert all(v > 0.99 for v in values)

"""TCP-lite edge cases beyond the happy path."""

import pytest

from repro.protocols.tcp import TcpState


def test_close_during_outage_eventually_completes(rig):
    sim, cluster, stacks = rig
    stacks[1].tcp.listen(80)
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.2)
    sim.run(until=1.0)
    cluster.faults.fail("hub0")
    conn.close()  # FIN queued into the outage
    sim.run(until=3.0)
    assert conn.state is TcpState.FIN_SENT  # still retransmitting the FIN
    cluster.faults.repair("hub0")
    sim.run(until=60.0)
    assert conn.state is TcpState.CLOSED


def test_abort_releases_connection_slot(rig):
    sim, cluster, stacks = rig
    stacks[1].tcp.listen(80)
    conn = stacks[0].tcp.connect(1, 80)
    sim.run(until=1.0)
    key = (conn.local_port, conn.remote_node, conn.remote_port)
    assert key in stacks[0].tcp._conns
    conn.abort()
    assert key not in stacks[0].tcp._conns
    assert conn.state is TcpState.CLOSED
    conn.abort()  # idempotent


def test_send_negative_bytes_rejected(rig):
    sim, cluster, stacks = rig
    stacks[1].tcp.listen(80)
    conn = stacks[0].tcp.connect(1, 80)
    with pytest.raises(ValueError):
        conn.send_message(data="x", data_bytes=-5)


def test_ephemeral_ports_unique(rig):
    sim, cluster, stacks = rig
    stacks[1].tcp.listen(80)
    conns = [stacks[0].tcp.connect(1, 80) for _ in range(5)]
    ports = {c.local_port for c in conns}
    assert len(ports) == 5


def test_two_clients_one_listener(rig):
    sim, cluster, stacks = rig
    inbox = []
    stacks[2].tcp.listen(80, on_message=lambda c, d, s: inbox.append(d))
    a = stacks[0].tcp.connect(2, 80)
    b = stacks[1].tcp.connect(2, 80)
    a.send_message(data="from-0", data_bytes=10)
    b.send_message(data="from-1", data_bytes=10)
    sim.run()
    assert sorted(inbox) == ["from-0", "from-1"]


def test_server_side_connection_list(rig):
    sim, cluster, stacks = rig
    listener = stacks[1].tcp.listen(80)
    stacks[0].tcp.connect(1, 80).send_message(data="x", data_bytes=1)
    sim.run()
    assert len(listener.connections) == 1
    assert listener.connections[0].established


def test_stray_segment_for_closed_connection_ignored(rig):
    sim, cluster, stacks = rig
    stacks[1].tcp.listen(80)
    conn = stacks[0].tcp.connect(1, 80)
    conn.send_message(data="x", data_bytes=1)
    sim.run(until=1.0)
    conn.abort()
    # peer may still emit an ACK afterwards; nothing should blow up
    sim.run(until=2.0)


def test_rto_floor_and_ceiling(rig):
    sim, cluster, stacks = rig
    stacks[1].tcp.listen(80)
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=1.0, min_rto_s=0.3, max_rto_s=2.0)
    sim.run(until=1.0)
    # LAN RTTs are microseconds: RTO clamps at the floor
    assert conn.rto_s >= 0.3
    cluster.faults.fail("hub0")
    conn.send_message(data="x", data_bytes=1)
    sim.run(until=30.0)
    assert conn.rto_s <= 2.0  # backoff respects the ceiling
